"""Command-line interface: ``repro-multicluster`` (or ``python -m repro``).

Sub-commands mirror the experiment harness:

* ``run``        — evaluate a named or JSON-file scenario under any set of
  engines through the unified API (:mod:`repro.api`), optionally in
  parallel; ``run --list`` shows the registered scenario names;
* ``table1``     — print the Table 1 system organisations;
* ``fig3`` / ``fig4`` — regenerate the validation figures (analysis and,
  unless ``--no-sim``, simulation), print the series and optionally write
  CSV files;
* ``sweep``      — a custom latency-versus-traffic sweep for any organisation
  expressed as ``m`` plus per-cluster tree heights;
* ``saturation`` — locate the saturation point of an organisation;
* ``ablation``   — run the heterogeneity and variance ablations;
* ``report``     — regenerate the full EXPERIMENTS.md content;
* ``bench``      — run the fixed simulator benchmark set and write the
  machine-readable ``BENCH_simulator.json`` perf artifact (optionally
  comparing against a previous artifact via ``--baseline``; ``--parallel``
  adds the shared-pool speedup-vs-workers curve);
* ``campaign``   — the multi-scenario Campaign API: ``campaign run
  plan.json --parallel --progress[=bar]`` executes a JSON plan over one
  shared process pool with streaming progress (or an aggregated
  per-scenario bar) and the content-addressed result store;
  ``--retries``/``--task-timeout`` make unattended campaigns survive
  crashed or hung workers (``--allow-failures`` reports partial results
  instead of failing); ``campaign example`` writes a starter plan;
  ``campaign store`` inspects (``--stats``) / prunes / clears /
  ``--migrate``\\ s the store between its directory and SQLite backends and
  merges stores from other machines (``--sync SRC`` copies, ``--merge SRC``
  drains); ``campaign run --runners`` shards the plan's simulation tasks
  over socket runners (``host:port`` list, or a count to auto-spawn
  loopback runner subprocesses);
* ``runner``     — one remote runner for distributed campaigns
  (:mod:`repro.service.cluster`): serves campaign task chunks to a
  coordinator over a length-prefixed JSON TCP protocol, evaluating inline
  or on a warm local worker pool (``--workers``);
* ``serve``      — the campaign service (:mod:`repro.service`): a persistent
  warm worker daemon behind a stdlib HTTP front-end that accepts campaign
  plans as JSON on ``POST /campaigns`` and streams progress back as
  server-sent events; compiled route tables live in shared memory, so a
  warm daemon skips the per-campaign compile entirely and fully cached
  plans are answered straight from the result store.

Every command is pure text output (tables / CSV / JSON); nothing requires a
plotting stack.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

import numpy as np

from repro import api
from repro.experiments.ablation import heterogeneity_ablation, variance_ablation
from repro.experiments.compare import (
    compare_model_and_simulation,
    compare_runset,
    model_applicability,
)
from repro.experiments.configs import FIGURE_SPECS, table1_specs, table1_system
from repro.experiments.figures import run_figure
from repro.experiments.report import (
    ablation_to_table,
    agreement_to_text,
    experiments_markdown,
    figure_to_table,
    save_figure_csvs,
    sweep_to_table,
    table1_to_table,
)
from repro.experiments.sweep import latency_sweep, sweep_result_from_runset
from repro.experiments.table1 import table1_rows
from repro.model.latency import MultiClusterLatencyModel
from repro.model.parameters import MessageSpec
from repro.model.saturation import saturation_point
from repro.sim.config import SimulationConfig
from repro.utils.serialization import dump_json
from repro.topology.multicluster import MultiClusterSpec
from repro.utils.validation import ValidationError


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for tests and docs)."""
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro-multicluster",
        description=(
            "Analytical and simulation models of interconnection networks in "
            "heterogeneous multi-cluster systems (ICPP Workshops 2006 reproduction)."
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser(
        "run",
        help="evaluate a named scenario or a scenario JSON file through repro.api",
    )
    run_parser.add_argument(
        "scenario",
        nargs="?",
        default=None,
        help="registered scenario name (see --list) or path to a scenario .json file",
    )
    run_parser.add_argument(
        "--list", action="store_true", help="list the registered scenario names and exit"
    )
    run_parser.add_argument(
        "--engines",
        default="model,sim",
        help="comma-separated engine names (default: model,sim)",
    )
    run_parser.add_argument(
        "--points",
        type=int,
        default=8,
        help="operating points for named scenarios (default 8; ignored for files)",
    )
    run_parser.add_argument(
        "--csv", type=Path, default=None, help="write the result table to CSV"
    )
    run_parser.add_argument(
        "--json", type=Path, default=None, help="write the full run set to JSON"
    )
    run_parser.add_argument(
        "--save-scenario",
        type=Path,
        default=None,
        help="write the resolved scenario itself to a JSON file (replayable via run)",
    )
    _add_simulation_options(run_parser, include_no_sim=False)
    # For `run`, budget/seed default to None sentinels: a scenario loaded
    # from a JSON file keeps its saved sim config unless a flag is given
    # explicitly (named scenarios fall back to quick/0).
    run_parser.set_defaults(budget=None, seed=None)

    subparsers.add_parser("table1", help="print the Table 1 system organisations")

    for figure in ("fig3", "fig4"):
        figure_parser = subparsers.add_parser(
            figure, help=f"regenerate {figure} (latency vs offered traffic)"
        )
        _add_simulation_options(figure_parser)
        figure_parser.add_argument(
            "--points", type=int, default=8, help="operating points per curve (default 8)"
        )
        figure_parser.add_argument(
            "--csv-dir", type=Path, default=None, help="write one CSV per series here"
        )

    sweep_parser = subparsers.add_parser(
        "sweep", help="latency sweep for a custom organisation"
    )
    sweep_parser.add_argument("--ports", "-m", type=int, required=True, help="switch ports m")
    sweep_parser.add_argument(
        "--heights",
        type=int,
        nargs="+",
        required=True,
        help="per-cluster tree heights n_i (one value per cluster)",
    )
    sweep_parser.add_argument("--message-flits", type=int, default=32)
    sweep_parser.add_argument("--flit-bytes", type=int, default=256)
    sweep_parser.add_argument(
        "--max-traffic", type=float, required=True, help="largest offered traffic to evaluate"
    )
    sweep_parser.add_argument("--points", type=int, default=8)
    sweep_parser.add_argument("--csv", type=Path, default=None, help="write the sweep to CSV")
    _add_simulation_options(sweep_parser)

    saturation_parser = subparsers.add_parser(
        "saturation", help="locate the saturation offered traffic of a Table 1 organisation"
    )
    saturation_parser.add_argument("--nodes", type=int, choices=(1120, 544), default=544)
    saturation_parser.add_argument("--message-flits", type=int, default=32)
    saturation_parser.add_argument("--flit-bytes", type=int, default=256)

    ablation_parser = subparsers.add_parser(
        "ablation", help="run the heterogeneity and variance ablations"
    )
    ablation_parser.add_argument("--nodes", type=int, choices=(1120, 544), default=1120)
    ablation_parser.add_argument("--message-flits", type=int, default=32)
    ablation_parser.add_argument("--flit-bytes", type=int, default=256)
    ablation_parser.add_argument("--points", type=int, default=6)

    report_parser = subparsers.add_parser(
        "report", help="regenerate the EXPERIMENTS.md content"
    )
    _add_simulation_options(report_parser)
    report_parser.add_argument("--points", type=int, default=6)
    report_parser.add_argument(
        "--output", type=Path, default=None, help="write the Markdown report to this file"
    )

    bench_parser = subparsers.add_parser(
        "bench",
        help="run the fixed simulator benchmark set and write BENCH_simulator.json",
    )
    bench_parser.add_argument(
        "--output",
        type=Path,
        default=Path("BENCH_simulator.json"),
        help="where to write the benchmark JSON (default: BENCH_simulator.json)",
    )
    bench_parser.add_argument(
        "--budget",
        choices=("quick", "default", "paper"),
        default="quick",
        help="simulation message budget per operating point",
    )
    bench_parser.add_argument("--seed", type=int, default=0, help="simulation random seed")
    bench_parser.add_argument(
        "--points", type=int, default=3, help="operating points per scenario (default 3)"
    )
    bench_parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="previous BENCH_simulator.json to compute speedups against",
    )
    bench_parser.add_argument(
        "--baseline-label",
        default="baseline",
        help="label recorded for the --baseline run",
    )
    bench_parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny message budget: exercise the harness without timing claims",
    )
    bench_parser.add_argument(
        "--parallel",
        action="store_true",
        help="fan operating points over a process pool (bit-identical results; "
        "records multi-core scaling in the workers/elapsed columns)",
    )
    bench_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process count for --parallel (default: CPU count)",
    )

    campaign_parser = subparsers.add_parser(
        "campaign",
        help="multi-scenario execution plans with streaming progress and a result store",
    )
    campaign_sub = campaign_parser.add_subparsers(dest="campaign_command", required=True)

    campaign_run = campaign_sub.add_parser(
        "run", help="execute a campaign plan JSON file"
    )
    campaign_run.add_argument("plan", type=Path, help="path to a campaign plan .json file")
    campaign_run.add_argument(
        "--parallel",
        action="store_true",
        help="fan all scenarios' simulation points over one shared process pool",
    )
    campaign_run.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process count for --parallel (default: CPU count)",
    )
    campaign_run.add_argument(
        "--progress",
        nargs="?",
        const="plain",
        default=None,
        choices=("plain", "bar"),
        help="live progress: 'plain' (default when the flag is bare) streams one "
        "line per finished task; 'bar' renders a single aggregated bar with "
        "per-scenario completion counts",
    )
    campaign_run.add_argument(
        "--no-store",
        action="store_true",
        help="disable the result store: compute every task fresh, cache nothing",
    )
    campaign_run.add_argument(
        "--store",
        type=Path,
        default=None,
        help="result store directory (default: $REPRO_STORE or ~/.cache/repro)",
    )
    campaign_run.add_argument(
        "--backend",
        choices=("directory", "sqlite"),
        default=None,
        help="result store backend (default: $REPRO_STORE_BACKEND, else "
        "auto-detected from the store directory)",
    )
    campaign_run.add_argument(
        "--retries",
        type=int,
        default=1,
        metavar="N",
        help="attempts per task (default 1 = no retries); crashed or hung "
        "pooled workers are re-queued onto a fresh worker up to N times",
    )
    campaign_run.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-task wall-clock budget for pooled tasks; a worker over "
        "budget is killed and the task re-queued (requires --retries > 1 to "
        "actually retry)",
    )
    campaign_run.add_argument(
        "--backoff",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="base sleep before re-queuing a failed task (doubles per attempt)",
    )
    campaign_run.add_argument(
        "--allow-failures",
        action="store_true",
        help="finish the campaign even if tasks exhaust their retries: report "
        "partial results instead of exiting with an error",
    )
    campaign_run.add_argument(
        "--json",
        type=Path,
        default=None,
        help="write every entry's run set plus execution stats to this JSON file",
    )
    campaign_run.add_argument(
        "--runners",
        default=None,
        metavar="SPEC",
        help="distribute simulation tasks over socket runners: either "
        "'host1:port1,host2:port2' naming running `repro runner` processes, "
        "or a count N to auto-spawn N loopback runner subprocesses "
        "(implies --parallel; results merge into the result store)",
    )

    campaign_example = campaign_sub.add_parser(
        "example", help="write a starter two-scenario campaign plan"
    )
    campaign_example.add_argument("output", type=Path, help="where to write the plan JSON")
    campaign_example.add_argument(
        "--points", type=int, default=2, help="operating points per scenario (default 2)"
    )
    campaign_example.add_argument(
        "--budget",
        choices=("quick", "default", "paper"),
        default="quick",
        help="simulation message budget per operating point",
    )
    campaign_example.add_argument(
        "--seed", type=int, default=0, help="simulation random seed"
    )

    campaign_store = campaign_sub.add_parser(
        "store", help="inspect, evict or migrate the content-addressed result store"
    )
    campaign_store.add_argument(
        "--store",
        type=Path,
        default=None,
        help="result store directory (default: $REPRO_STORE or ~/.cache/repro)",
    )
    campaign_store.add_argument(
        "--backend",
        choices=("directory", "sqlite"),
        default=None,
        help="result store backend (default: $REPRO_STORE_BACKEND, else "
        "auto-detected from the store directory)",
    )
    campaign_store.add_argument(
        "--migrate",
        choices=("directory", "sqlite"),
        default=None,
        metavar="BACKEND",
        help="convert the store to the given backend record-identically "
        "(directory = one JSON file per record, sqlite = single indexed store.db)",
    )
    campaign_store.add_argument(
        "--clear", action="store_true", help="delete every cached record"
    )
    campaign_store.add_argument(
        "--prune",
        type=int,
        default=None,
        metavar="N",
        help="keep only the N most recently used records",
    )
    campaign_store.add_argument(
        "--sync",
        type=Path,
        default=None,
        metavar="SRC",
        help="copy records from the store at SRC into this store "
        "(content-addressed owner-wins merge: identical keys keep this "
        "store's copy; SRC is left unchanged)",
    )
    campaign_store.add_argument(
        "--merge",
        type=Path,
        default=None,
        metavar="SRC",
        help="like --sync, but drain merged records out of SRC so the union "
        "ends up wholly in this store",
    )
    campaign_store.add_argument(
        "--stats",
        action="store_true",
        help="print record count, size, backend and hit/miss/put counters",
    )

    runner_parser = subparsers.add_parser(
        "runner",
        help="serve campaign task chunks to a remote coordinator over TCP",
    )
    runner_parser.add_argument(
        "--listen",
        default="127.0.0.1:0",
        metavar="HOST:PORT",
        help="bind address (default 127.0.0.1:0; port 0 picks a free port, "
        "announced as 'runner listening on HOST:PORT' on stdout)",
    )
    runner_parser.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="evaluate chunks on a warm local worker pool of N processes "
        "(default 0 = inline: the runner process itself is the one worker)",
    )

    serve_parser = subparsers.add_parser(
        "serve",
        help="serve campaign plans over HTTP from a persistent warm worker pool",
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    serve_parser.add_argument(
        "--port",
        type=int,
        default=8765,
        help="TCP port (default 8765; 0 binds a free ephemeral port)",
    )
    serve_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="persistent worker processes (default: CPU count)",
    )
    serve_parser.add_argument(
        "--no-store",
        action="store_true",
        help="disable the result store: compute every task fresh, cache nothing",
    )
    serve_parser.add_argument(
        "--store",
        type=Path,
        default=None,
        help="result store directory (default: $REPRO_STORE or ~/.cache/repro)",
    )
    serve_parser.add_argument(
        "--backend",
        choices=("directory", "sqlite"),
        default=None,
        help="result store backend (default: $REPRO_STORE_BACKEND, else "
        "auto-detected from the store directory)",
    )
    serve_parser.add_argument(
        "--retries",
        type=int,
        default=1,
        metavar="N",
        help="attempts per task for served campaigns (default 1 = no retries); "
        "a crashed worker pool is restarted and its tasks re-queued",
    )
    serve_parser.add_argument(
        "--no-shared-memory",
        action="store_true",
        help="skip the shared-memory export of compiled tables (debugging aid; "
        "workers recompile instead of mapping)",
    )

    return parser


def _add_simulation_options(
    parser: argparse.ArgumentParser, *, include_no_sim: bool = True
) -> None:
    if include_no_sim:
        parser.add_argument(
            "--no-sim", action="store_true", help="analytical model only (much faster)"
        )
    parser.add_argument(
        "--budget",
        choices=("quick", "default", "paper"),
        default="quick",
        help="simulation message budget (quick=1.5k, default=10k, paper=100k measured)",
    )
    parser.add_argument("--seed", type=int, default=0, help="simulation random seed")
    parser.add_argument(
        "--parallel",
        action="store_true",
        help="fan simulation points out over a process pool (identical results)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process count for --parallel (default: CPU count)",
    )


def _simulation_config(args: argparse.Namespace) -> SimulationConfig:
    return api.simulation_budget(args.budget, args.seed)


def _message(args: argparse.Namespace) -> MessageSpec:
    return MessageSpec(length_flits=args.message_flits, flit_bytes=args.flit_bytes)


# --------------------------------------------------------------------------- #
# Command implementations
# --------------------------------------------------------------------------- #
def _resolve_run_scenario(args: argparse.Namespace) -> "api.Scenario":
    """Name-or-file resolution for the ``run`` subcommand."""
    target = args.scenario
    path = Path(target)
    if target.endswith(".json") or path.exists():
        if not path.exists():
            raise ValidationError(f"scenario file not found: {path}")
        try:
            scenario = api.Scenario.from_json(path)
        except (TypeError, ValueError, KeyError) as error:
            raise ValidationError(f"invalid scenario file {path}: {error}") from error
        # The file's saved sim config is authoritative; explicit --budget /
        # --seed flags override it for replays at a different budget.
        if args.budget is not None:
            seed = args.seed if args.seed is not None else scenario.sim.seed
            return scenario.with_sim(api.simulation_budget(args.budget, seed))
        if args.seed is not None:
            return scenario.with_seed(args.seed)
        return scenario
    return api.scenario(
        target,
        points=args.points,
        budget=args.budget if args.budget is not None else "quick",
        seed=args.seed if args.seed is not None else 0,
    )


def _cmd_run(args: argparse.Namespace) -> int:
    if args.list:
        print("registered scenarios:")
        for name in api.scenario_names():
            print(f"  {name}")
        return 0
    if args.scenario is None:
        raise ValidationError("a scenario name or .json file is required (or --list)")
    scenario = _resolve_run_scenario(args)
    engines = tuple(name.strip() for name in args.engines.split(",") if name.strip())
    applicability = model_applicability(scenario)
    if not applicability.applicable:
        analytical = {"model", "analysis"}
        dropped = tuple(name for name in engines if name in analytical)
        if dropped:
            engines = tuple(name for name in engines if name not in analytical)
            print(f"analytical model not applicable: {applicability.reason}")
            print(f"skipping engine(s): {', '.join(dropped)}")
            if not engines:
                raise ValidationError(
                    "no engines left to run; zoo topologies need a "
                    "simulation engine (e.g. --engines sim)"
                )
    if args.save_scenario is not None:
        path = scenario.to_json(args.save_scenario)
        print(f"wrote scenario: {path}")
    runset = api.run(
        scenario, engines=engines, parallel=args.parallel, max_workers=args.workers
    )
    print(runset.describe())
    print()
    table = sweep_to_table(sweep_result_from_runset(runset))
    print(table.to_text())
    if "model" in runset.engines and "sim" in runset.engines:
        print()
        print(agreement_to_text(compare_runset(runset)))
    print()
    print(f"engine wall-clock total: {runset.total_wall_clock_seconds():.2f} s")
    if args.csv is not None:
        path = table.save_csv(args.csv)
        print(f"wrote: {path}")
    if args.json is not None:
        path = dump_json(runset, args.json)
        print(f"wrote: {path}")
    return 0


def _cmd_table1(_: argparse.Namespace) -> int:
    print(table1_to_table(table1_rows()).to_text())
    for spec in table1_specs():
        print()
        print(spec.describe())
    return 0


def _cmd_figure(args: argparse.Namespace, figure: str) -> int:
    config = _simulation_config(args)
    result = run_figure(
        figure,
        num_points=args.points,
        run_simulation=not args.no_sim,
        simulation_config=config,
        parallel=args.parallel,
        max_workers=args.workers,
    )
    for table in figure_to_table(result):
        print(table.to_text())
        print()
    if not args.no_sim:
        for key, sweep in sorted(result.sweeps.items()):
            print(agreement_to_text(compare_model_and_simulation(sweep)))
            print()
    if args.csv_dir is not None:
        paths = save_figure_csvs(result, args.csv_dir)
        print("wrote:", ", ".join(str(path) for path in paths))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    spec = MultiClusterSpec(m=args.ports, cluster_heights=tuple(args.heights))
    offered = np.linspace(0.0, args.max_traffic, args.points + 1)[1:]
    sweep = latency_sweep(
        spec,
        _message(args),
        offered,
        run_simulation=not args.no_sim,
        simulation_config=_simulation_config(args),
        parallel=args.parallel,
        max_workers=args.workers,
    )
    table = sweep_to_table(sweep)
    print(table.to_text())
    if args.csv is not None:
        path = table.save_csv(args.csv)
        print(f"wrote: {path}")
    return 0


def _cmd_saturation(args: argparse.Namespace) -> int:
    spec = table1_system(args.nodes)
    model = MultiClusterLatencyModel(spec, _message(args))
    upper = 2e-3 if args.nodes == 544 else 1e-3
    point = saturation_point(model, upper_bound=upper)
    print(f"{spec.name}, {_message(args).describe()}")
    print(f"zero-load latency      : {model.zero_load_latency:.1f} time units")
    print(f"saturation offered traffic (model): {point:.6g} messages/node/time-unit")
    return 0


def _cmd_ablation(args: argparse.Namespace) -> int:
    spec = table1_system(args.nodes)
    message = _message(args)
    model = MultiClusterLatencyModel(spec, message)
    upper = saturation_point(model, upper_bound=2e-3) * 0.9
    offered = np.linspace(0.0, upper, args.points + 1)[1:]
    for result in (
        heterogeneity_ablation(spec, message, offered),
        variance_ablation(spec, message, offered),
    ):
        print(ablation_to_table(result).to_text())
        print()
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    config = _simulation_config(args)
    figures = {
        "Figure 3 (N=1120)": run_figure(
            "fig3",
            num_points=args.points,
            run_simulation=not args.no_sim,
            simulation_config=config,
            parallel=args.parallel,
            max_workers=args.workers,
        ),
        "Figure 4 (N=544)": run_figure(
            "fig4",
            num_points=args.points,
            run_simulation=not args.no_sim,
            simulation_config=config,
            parallel=args.parallel,
            max_workers=args.workers,
        ),
    }
    agreements = {}
    if not args.no_sim:
        for name, figure in figures.items():
            # Report agreement for the first series of every figure.
            first_key = sorted(figure.sweeps)[0]
            agreements[name] = compare_model_and_simulation(figure.sweeps[first_key])
    markdown = experiments_markdown(
        table1=table1_rows(), figures=figures, agreements=agreements or None
    )
    if args.output is not None:
        args.output.write_text(markdown, encoding="utf-8")
        print(f"wrote: {args.output}")
    else:
        print(markdown)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.experiments.bench import (
        attach_baseline,
        bench_to_text,
        load_baseline,
        run_bench,
        write_bench,
    )

    baseline = None
    if args.baseline is not None:
        if not args.baseline.exists():
            raise ValidationError(f"baseline file not found: {args.baseline}")
        baseline = load_baseline(args.baseline)
    payload = run_bench(
        points=args.points,
        budget=args.budget,
        seed=args.seed,
        smoke=args.smoke,
        parallel=args.parallel,
        workers=args.workers,
    )
    if baseline is not None:
        payload = attach_baseline(payload, baseline, label=args.baseline_label)
    print(bench_to_text(payload))
    path = write_bench(payload, args.output)
    print(f"wrote: {path}")
    return 0


def _campaign_store(args: argparse.Namespace) -> "ResultStore":
    from repro.store import ResultStore

    backend = getattr(args, "backend", None)
    root = args.store if args.store is not None else None
    return ResultStore(root, backend=backend)


class _ProgressBar:
    """One-line ``--progress=bar`` renderer: campaign bar + per-scenario counts.

    Pure ``\\r`` redraw on stdout — no curses, no dependencies — aggregating
    completion per scenario label so a many-scenario campaign reads at a
    glance where the work is.
    """

    WIDTH = 30

    def __init__(self, campaign) -> None:
        self.totals = {
            label: len(entry.engines) * len(entry.scenario.offered_traffic)
            for label, entry in zip(campaign.labels, campaign.entries)
        }
        self.done = {label: 0 for label in self.totals}
        self.total = sum(self.totals.values())
        self.failed = 0
        self.retries = 0
        self._last_width = 0

    def update(self, event) -> None:
        from repro.campaign import TaskCompleted, TaskFailed, TaskRetried

        if isinstance(event, TaskCompleted):
            self.done[event.task.label] += 1
        elif isinstance(event, TaskFailed):
            self.done[event.task.label] += 1
            self.failed += 1
        elif isinstance(event, TaskRetried):
            self.retries += 1
        else:
            return
        self.render()

    def render(self) -> None:
        done = sum(self.done.values())
        filled = int(self.WIDTH * done / self.total) if self.total else self.WIDTH
        bar = "#" * filled + "-" * (self.WIDTH - filled)
        scenarios = "  ".join(
            f"{label} {count}/{self.totals[label]}"
            for label, count in self.done.items()
        )
        line = f"[{bar}] {done}/{self.total}  {scenarios}"
        if self.retries:
            line += f"  ({self.retries} retries)"
        if self.failed:
            line += f"  ({self.failed} FAILED)"
        # Pad over the previous render so a shrinking line leaves no litter.
        padding = " " * max(self._last_width - len(line), 0)
        self._last_width = len(line)
        print(f"\r{line}{padding}", end="", flush=True)

    def finish(self) -> None:
        if self._last_width:
            print(flush=True)


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    from repro.campaign import (
        Campaign,
        CampaignExecutionError,
        CampaignExecutor,
        RetryPolicy,
        TaskCompleted,
        TaskFailed,
        TaskRetried,
    )
    from repro.experiments.compare import compare_campaign
    from repro.utils.serialization import to_jsonable

    if not args.plan.exists():
        raise ValidationError(f"campaign plan not found: {args.plan}")
    try:
        campaign = Campaign.from_json(args.plan)
    except (TypeError, ValueError, KeyError) as error:
        raise ValidationError(f"invalid campaign plan {args.plan}: {error}") from error
    store = None if args.no_store else _campaign_store(args)
    retry = None
    if args.retries != 1 or args.task_timeout is not None or args.backoff:
        retry = RetryPolicy(
            max_attempts=args.retries,
            timeout_seconds=args.task_timeout,
            backoff_seconds=args.backoff,
        )
    backend = None
    runner_addresses: Optional[List[str]] = None
    if args.runners is not None:
        from repro.service.cluster import (
            ClusterBackend,
            LocalRunnerFleet,
            parse_runner_spec,
        )

        spec = parse_runner_spec(args.runners)
        fleet = None
        if isinstance(spec, int):
            fleet = LocalRunnerFleet(spec)
            runner_addresses = list(fleet.addresses)
        else:
            runner_addresses = list(spec)
        backend = ClusterBackend(runner_addresses, fleet=fleet)
        # Sharding only exists on the pooled path; --runners without
        # --parallel would silently run everything inline on this machine.
        args.parallel = True
    executor = CampaignExecutor(
        campaign,
        parallel=args.parallel,
        max_workers=args.workers,
        store=store,
        retry=retry,
        backend=backend,
    )
    print(campaign.describe())
    if store is not None:
        print(f"result store: {store.root} [{store.backend.name}]")
    if runner_addresses is not None:
        origin = "auto-spawned" if args.runners.strip().isdigit() else "remote"
        print(f"runners: {', '.join(runner_addresses)} ({origin})")
    print()

    bar = _ProgressBar(campaign) if args.progress == "bar" else None

    def _print_event(event) -> None:
        if bar is not None:
            bar.update(event)
            return
        if args.progress is None:
            return
        if isinstance(event, TaskCompleted):
            task = event.task
            origin = "cache" if event.from_cache else "ran"
            print(
                f"[{event.done}/{event.total}] {task.label} {task.engine} "
                f"lambda_g={task.lambda_g:.6g} latency={event.record.latency:.6g} "
                f"({origin}, {event.elapsed_seconds:.2f} s elapsed)"
            )
        elif isinstance(event, TaskRetried):
            print(
                f"[retry] {event.task.task_id} lambda_g={event.task.lambda_g:.6g} "
                f"attempt {event.attempt}/{event.max_attempts} failed: {event.error}"
            )
        elif isinstance(event, TaskFailed):
            print(
                f"[FAILED {event.done}/{event.total}] {event.task.task_id} "
                f"after {event.attempts} attempts: {event.error}"
            )

    try:
        result = executor.collect(
            strict=not args.allow_failures, on_event=_print_event
        )
    except CampaignExecutionError as error:
        if bar is not None:
            bar.finish()
        print(f"error: {error}", file=sys.stderr)
        return 3
    finally:
        if backend is not None:
            backend.close()
    if bar is not None:
        bar.finish()
    if backend is not None and backend.dead_runners():
        print(
            f"lost runners (tasks re-queued to survivors): "
            f"{', '.join(backend.dead_runners())}",
            file=sys.stderr,
        )
    if args.progress is not None:
        print()
    failed_labels = {failure.task.label for failure in result.failures}
    for label, runset in result:
        header = runset.scenario.describe()
        if label != runset.scenario.name:
            header = f"{label}: {header}"
        if label in failed_labels:
            # A partial series misaligns against the load grid; name the
            # holes instead of tabulating around them.
            missing = [
                failure.task.task_id
                for failure in result.failures
                if failure.task.label == label
            ]
            print(f"== {header}")
            print(f"   PARTIAL: missing {', '.join(missing)}")
            print()
            continue
        print(f"== {header}")
        print(sweep_to_table(sweep_result_from_runset(runset)).to_text())
        print()
    if not failed_labels:
        for label, report in compare_campaign(result).items():
            print(f"-- {label}")
            print(agreement_to_text(report))
            print()
    summary = (
        f"{result.total_tasks} tasks in {result.elapsed_seconds:.2f} s "
        f"({result.cache_hits} cached, {result.cache_misses} computed)"
    )
    if result.task_retries:
        summary += f", {result.task_retries} retries"
    if result.failures:
        summary += f", {len(result.failures)} FAILED"
    print(summary)
    if args.json is not None:
        payload = {
            "name": campaign.name,
            "labels": list(result.labels),
            "runsets": {
                label: to_jsonable(runset) for label, runset in result
            },
            "execution": {
                "tasks": result.total_tasks,
                "cache_hits": result.cache_hits,
                "cache_misses": result.cache_misses,
                "elapsed_seconds": result.elapsed_seconds,
                "parallel": bool(args.parallel),
                "store": str(store.root) if store is not None else None,
                "store_backend": store.backend.name if store is not None else None,
                "runners": runner_addresses,
                "lost_runners": (
                    list(backend.dead_runners()) if backend is not None else []
                ),
                "task_retries": result.task_retries,
                "failures": [
                    {
                        "task": failure.task.task_id,
                        "lambda_g": failure.task.lambda_g,
                        "attempts": failure.attempts,
                        "error": failure.error,
                    }
                    for failure in result.failures
                ],
            },
        }
        path = dump_json(payload, args.json)
        print(f"wrote: {path}")
    return 0


def _cmd_campaign_example(args: argparse.Namespace) -> int:
    from repro.campaign import Campaign
    from repro.utils.serialization import dump_json as _dump

    plan = {
        "name": "example",
        "entries": [
            {
                "scenario": name,
                "points": args.points,
                "budget": args.budget,
                "seed": args.seed,
                "engines": ["model", "sim"],
            }
            for name in ("heterogeneous", "hotspot")
        ],
    }
    Campaign.from_dict(plan)  # validate before writing
    path = _dump(plan, args.output)
    print(f"wrote: {path}")
    print("run it with: repro-multicluster campaign run "
          f"{path} --parallel --progress")
    return 0


def _cmd_campaign_store(args: argparse.Namespace) -> int:
    import warnings

    from repro.store import ResultStore, merge_stores, migrate_store

    store = _campaign_store(args)
    if args.sync is not None and args.merge is not None:
        raise ValidationError("--sync and --merge are mutually exclusive")
    if args.migrate is not None:
        moved = migrate_store(store, args.migrate)
        if moved:
            print(f"migrated {moved} records to the {args.migrate} backend")
        else:
            print(f"store already uses the {args.migrate} backend")
    source_root = args.merge if args.merge is not None else args.sync
    if source_root is not None:
        source = ResultStore(source_root)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            report = merge_stores(store, source, move=args.merge is not None)
        for warning in caught:
            print(f"warning: {warning.message}", file=sys.stderr)
        print(f"{report.describe()} from {source.root}")
    if args.clear:
        removed = store.clear()
        print(f"removed {removed} records")
    if args.prune is not None:
        if args.prune < 0:
            raise ValidationError(f"--prune must be >= 0, got {args.prune}")
        removed = store.prune(args.prune)
        print(f"pruned {removed} records")
    if args.stats:
        print(store.describe_stats())
    else:
        print(store.describe())
    return 0


def _cmd_runner(args: argparse.Namespace) -> int:
    from repro.service.cluster import run_runner

    if args.workers < 0:
        raise ValidationError(f"--workers must be >= 0, got {args.workers}")
    run_runner(args.listen, workers=args.workers)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.campaign import RetryPolicy
    from repro.service import WorkerDaemon, serve

    if args.retries < 1:
        raise ValidationError(f"--retries must be >= 1, got {args.retries}")
    store = None if args.no_store else _campaign_store(args)
    retry = RetryPolicy(max_attempts=args.retries) if args.retries > 1 else None
    daemon = WorkerDaemon(args.workers, use_shared_memory=not args.no_shared_memory)
    serve(args.host, args.port, daemon=daemon, store=store, retry=retry)
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    if args.campaign_command == "run":
        return _cmd_campaign_run(args)
    if args.campaign_command == "example":
        return _cmd_campaign_example(args)
    if args.campaign_command == "store":
        return _cmd_campaign_store(args)
    raise ValidationError(f"unknown campaign command {args.campaign_command!r}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point used by the ``repro-multicluster`` console script."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    try:
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "table1":
            return _cmd_table1(args)
        if args.command in ("fig3", "fig4"):
            return _cmd_figure(args, args.command)
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "saturation":
            return _cmd_saturation(args)
        if args.command == "ablation":
            return _cmd_ablation(args)
        if args.command == "report":
            return _cmd_report(args)
        if args.command == "bench":
            return _cmd_bench(args)
        if args.command == "campaign":
            return _cmd_campaign(args)
        if args.command == "runner":
            return _cmd_runner(args)
        if args.command == "serve":
            return _cmd_serve(args)
        parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    except ValidationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return 0  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
