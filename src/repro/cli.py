"""Command-line interface: ``repro-multicluster`` (or ``python -m repro``).

Sub-commands mirror the experiment harness:

* ``table1``     — print the Table 1 system organisations;
* ``fig3`` / ``fig4`` — regenerate the validation figures (analysis and,
  unless ``--no-sim``, simulation), print the series and optionally write
  CSV files;
* ``sweep``      — a custom latency-versus-traffic sweep for any organisation
  expressed as ``m`` plus per-cluster tree heights;
* ``saturation`` — locate the saturation point of an organisation;
* ``ablation``   — run the heterogeneity and variance ablations;
* ``report``     — regenerate the full EXPERIMENTS.md content.

Every command is pure text output (tables / CSV); nothing requires a plotting
stack.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

import numpy as np

from repro.experiments.ablation import heterogeneity_ablation, variance_ablation
from repro.experiments.compare import compare_model_and_simulation
from repro.experiments.configs import FIGURE_SPECS, table1_specs, table1_system
from repro.experiments.figures import run_figure
from repro.experiments.report import (
    ablation_to_table,
    agreement_to_text,
    experiments_markdown,
    figure_to_table,
    save_figure_csvs,
    sweep_to_table,
    table1_to_table,
)
from repro.experiments.sweep import latency_sweep
from repro.experiments.table1 import table1_rows
from repro.model.latency import MultiClusterLatencyModel
from repro.model.parameters import MessageSpec
from repro.model.saturation import saturation_point
from repro.sim.config import SimulationConfig
from repro.topology.multicluster import MultiClusterSpec
from repro.utils.validation import ValidationError


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-multicluster",
        description=(
            "Analytical and simulation models of interconnection networks in "
            "heterogeneous multi-cluster systems (ICPP Workshops 2006 reproduction)."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("table1", help="print the Table 1 system organisations")

    for figure in ("fig3", "fig4"):
        figure_parser = subparsers.add_parser(
            figure, help=f"regenerate {figure} (latency vs offered traffic)"
        )
        _add_simulation_options(figure_parser)
        figure_parser.add_argument(
            "--points", type=int, default=8, help="operating points per curve (default 8)"
        )
        figure_parser.add_argument(
            "--csv-dir", type=Path, default=None, help="write one CSV per series here"
        )

    sweep_parser = subparsers.add_parser(
        "sweep", help="latency sweep for a custom organisation"
    )
    sweep_parser.add_argument("--ports", "-m", type=int, required=True, help="switch ports m")
    sweep_parser.add_argument(
        "--heights",
        type=int,
        nargs="+",
        required=True,
        help="per-cluster tree heights n_i (one value per cluster)",
    )
    sweep_parser.add_argument("--message-flits", type=int, default=32)
    sweep_parser.add_argument("--flit-bytes", type=int, default=256)
    sweep_parser.add_argument(
        "--max-traffic", type=float, required=True, help="largest offered traffic to evaluate"
    )
    sweep_parser.add_argument("--points", type=int, default=8)
    sweep_parser.add_argument("--csv", type=Path, default=None, help="write the sweep to CSV")
    _add_simulation_options(sweep_parser)

    saturation_parser = subparsers.add_parser(
        "saturation", help="locate the saturation offered traffic of a Table 1 organisation"
    )
    saturation_parser.add_argument("--nodes", type=int, choices=(1120, 544), default=544)
    saturation_parser.add_argument("--message-flits", type=int, default=32)
    saturation_parser.add_argument("--flit-bytes", type=int, default=256)

    ablation_parser = subparsers.add_parser(
        "ablation", help="run the heterogeneity and variance ablations"
    )
    ablation_parser.add_argument("--nodes", type=int, choices=(1120, 544), default=1120)
    ablation_parser.add_argument("--message-flits", type=int, default=32)
    ablation_parser.add_argument("--flit-bytes", type=int, default=256)
    ablation_parser.add_argument("--points", type=int, default=6)

    report_parser = subparsers.add_parser(
        "report", help="regenerate the EXPERIMENTS.md content"
    )
    _add_simulation_options(report_parser)
    report_parser.add_argument("--points", type=int, default=6)
    report_parser.add_argument(
        "--output", type=Path, default=None, help="write the Markdown report to this file"
    )

    return parser


def _add_simulation_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--no-sim", action="store_true", help="analytical model only (much faster)"
    )
    parser.add_argument(
        "--budget",
        choices=("quick", "default", "paper"),
        default="quick",
        help="simulation message budget (quick=1.5k, default=10k, paper=100k measured)",
    )
    parser.add_argument("--seed", type=int, default=0, help="simulation random seed")


def _simulation_config(args: argparse.Namespace) -> SimulationConfig:
    if args.budget == "paper":
        return SimulationConfig.paper(seed=args.seed)
    if args.budget == "default":
        return SimulationConfig(seed=args.seed)
    return SimulationConfig.quick(seed=args.seed)


def _message(args: argparse.Namespace) -> MessageSpec:
    return MessageSpec(length_flits=args.message_flits, flit_bytes=args.flit_bytes)


# --------------------------------------------------------------------------- #
# Command implementations
# --------------------------------------------------------------------------- #
def _cmd_table1(_: argparse.Namespace) -> int:
    print(table1_to_table(table1_rows()).to_text())
    for spec in table1_specs():
        print()
        print(spec.describe())
    return 0


def _cmd_figure(args: argparse.Namespace, figure: str) -> int:
    config = _simulation_config(args)
    result = run_figure(
        figure,
        num_points=args.points,
        run_simulation=not args.no_sim,
        simulation_config=config,
    )
    for table in figure_to_table(result):
        print(table.to_text())
        print()
    if not args.no_sim:
        for key, sweep in sorted(result.sweeps.items()):
            print(agreement_to_text(compare_model_and_simulation(sweep)))
            print()
    if args.csv_dir is not None:
        paths = save_figure_csvs(result, args.csv_dir)
        print("wrote:", ", ".join(str(path) for path in paths))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    spec = MultiClusterSpec(m=args.ports, cluster_heights=tuple(args.heights))
    offered = np.linspace(0.0, args.max_traffic, args.points + 1)[1:]
    sweep = latency_sweep(
        spec,
        _message(args),
        offered,
        run_simulation=not args.no_sim,
        simulation_config=_simulation_config(args),
    )
    table = sweep_to_table(sweep)
    print(table.to_text())
    if args.csv is not None:
        path = table.save_csv(args.csv)
        print(f"wrote: {path}")
    return 0


def _cmd_saturation(args: argparse.Namespace) -> int:
    spec = table1_system(args.nodes)
    model = MultiClusterLatencyModel(spec, _message(args))
    upper = 2e-3 if args.nodes == 544 else 1e-3
    point = saturation_point(model, upper_bound=upper)
    print(f"{spec.name}, {_message(args).describe()}")
    print(f"zero-load latency      : {model.zero_load_latency:.1f} time units")
    print(f"saturation offered traffic (model): {point:.6g} messages/node/time-unit")
    return 0


def _cmd_ablation(args: argparse.Namespace) -> int:
    spec = table1_system(args.nodes)
    message = _message(args)
    model = MultiClusterLatencyModel(spec, message)
    upper = saturation_point(model, upper_bound=2e-3) * 0.9
    offered = np.linspace(0.0, upper, args.points + 1)[1:]
    for result in (
        heterogeneity_ablation(spec, message, offered),
        variance_ablation(spec, message, offered),
    ):
        print(ablation_to_table(result).to_text())
        print()
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    config = _simulation_config(args)
    figures = {
        "Figure 3 (N=1120)": run_figure(
            "fig3",
            num_points=args.points,
            run_simulation=not args.no_sim,
            simulation_config=config,
        ),
        "Figure 4 (N=544)": run_figure(
            "fig4",
            num_points=args.points,
            run_simulation=not args.no_sim,
            simulation_config=config,
        ),
    }
    agreements = {}
    if not args.no_sim:
        for name, figure in figures.items():
            # Report agreement for the first series of every figure.
            first_key = sorted(figure.sweeps)[0]
            agreements[name] = compare_model_and_simulation(figure.sweeps[first_key])
    markdown = experiments_markdown(
        table1=table1_rows(), figures=figures, agreements=agreements or None
    )
    if args.output is not None:
        args.output.write_text(markdown, encoding="utf-8")
        print(f"wrote: {args.output}")
    else:
        print(markdown)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point used by the ``repro-multicluster`` console script."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    try:
        if args.command == "table1":
            return _cmd_table1(args)
        if args.command in ("fig3", "fig4"):
            return _cmd_figure(args, args.command)
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "saturation":
            return _cmd_saturation(args)
        if args.command == "ablation":
            return _cmd_ablation(args)
        if args.command == "report":
            return _cmd_report(args)
        parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    except ValidationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return 0  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
