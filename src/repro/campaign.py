"""The Campaign API: multi-scenario execution plans with streaming progress.

The paper's deliverable is a model-vs-simulation *comparison across many
system organisations*; one :func:`repro.api.run` call evaluates exactly one
scenario, so every figure/table/ablation driver used to hand-roll its own
loop and pay a fresh process pool per scenario.  This module treats the whole
experiment campaign as one schedulable unit:

* :class:`Campaign` — a declarative, JSON round-trippable plan holding many
  named entries, each an independent (:class:`~repro.api.Scenario`, engine
  set) pair.  Plans serialise with :meth:`Campaign.to_json` /
  :meth:`Campaign.from_json`; plan files may also reference registered
  scenario *names* with per-entry ``points``/``budget``/``seed`` overrides,
  so a campaign manifest is a small versionable artifact.
* :class:`CampaignExecutor` — flattens every (scenario, engine, lambda_g)
  task of the plan into **one work queue** and fans the expensive misses out
  over a **single shared process pool**: scenario-level parallelism for
  free, no per-scenario pool churn.  Execution is *streaming* —
  :meth:`~CampaignExecutor.execute` yields a :class:`TaskCompleted` event
  (carrying the :class:`~repro.api.RunRecord`) per finished task plus
  :class:`CampaignProgress` events with done/total counts and elapsed time —
  and :meth:`~CampaignExecutor.collect` is the blocking wrapper that
  preserves ``run()``-style ergonomics, assembling one
  :class:`~repro.api.RunSet` per entry.
* the **content-addressed result store** (:mod:`repro.store`) backs every
  execution by default: tasks are keyed by a hash of the scenario JSON,
  engine name, operating point (the seed lives in the scenario) and the
  active kernel/scheduler switches, so re-running a campaign re-simulates
  only what changed and an interrupted campaign resumes — the golden-seed
  discipline guarantees cached records are bit-identical to fresh runs.

:func:`repro.api.run` is a thin one-scenario campaign over this machinery.

Quick start::

    from repro import api
    from repro.campaign import Campaign, CampaignExecutor

    plan = Campaign.from_scenarios(("fig3", "fig4"), points=6)
    for event in CampaignExecutor(plan, parallel=True).execute():
        print(event)                      # records + progress, as they finish
    result = CampaignExecutor(plan, parallel=True).collect()
    print(result.describe())              # second pass: all cache hits
    fig3 = result.runset("fig3")
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import repro.api as api
from repro.api import (
    Engine,
    EngineLike,
    ENGINE_REGISTRY,
    RunRecord,
    RunSet,
    Scenario,
    _evaluate_point,
    resolve_engines,
)
from repro.store import ResultStore, kernel_switches, task_key
from repro.utils.serialization import dump_json, load_json
from repro.utils.validation import ValidationError

__all__ = [
    "Campaign",
    "CampaignEntry",
    "CampaignEvent",
    "CampaignExecutor",
    "CampaignProgress",
    "CampaignResult",
    "CampaignTask",
    "TaskCompleted",
    "run_campaign",
]


# --------------------------------------------------------------------------- #
# The declarative plan
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class CampaignEntry:
    """One named scenario of a campaign, with its own engine set.

    ``engines`` follows the :func:`repro.api.run` convention: registry names
    (JSON-safe, cacheable in the result store) or engine *instances*
    (programmatic patterns/overrides; executable but neither serialisable
    nor cached, because an instance's construction is not part of the task's
    content address).
    """

    scenario: Scenario
    engines: Tuple[EngineLike, ...] = ("model", "sim")
    label: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "engines", tuple(self.engines))
        if not self.engines:
            raise ValidationError("a campaign entry needs at least one engine")
        if not self.scenario.offered_traffic:
            raise ValidationError("offered_traffic must contain at least one value")
        for engine in self.engines:
            if isinstance(engine, str) and engine not in ENGINE_REGISTRY:
                raise ValidationError(
                    f"unknown engine {engine!r}; registered: {sorted(ENGINE_REGISTRY)}"
                )


@dataclass(frozen=True)
class Campaign:
    """A declarative multi-scenario execution plan."""

    entries: Tuple[CampaignEntry, ...]
    name: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "entries", tuple(self.entries))
        if not self.entries:
            raise ValidationError("a campaign needs at least one entry")
        self.labels  # noqa: B018 - validates label uniqueness eagerly

    @property
    def labels(self) -> Tuple[str, ...]:
        """One unique label per entry (entry label, scenario name, or index)."""
        labels: List[str] = []
        for index, entry in enumerate(self.entries):
            label = entry.label or entry.scenario.name or f"entry{index}"
            if label in labels:
                raise ValidationError(f"duplicate campaign entry label {label!r}")
            labels.append(label)
        return tuple(labels)

    @property
    def total_tasks(self) -> int:
        """Number of flattened (scenario, engine, operating point) tasks."""
        return sum(
            len(entry.engines) * len(entry.scenario.offered_traffic)
            for entry in self.entries
        )

    def describe(self) -> str:
        label = self.name or "campaign"
        return (
            f"{label}: {len(self.entries)} scenarios, {self.total_tasks} tasks "
            f"({', '.join(self.labels)})"
        )

    # ------------------------------------------------------------ construction
    @classmethod
    def from_scenarios(
        cls,
        scenarios: Iterable[Union[str, Scenario]],
        *,
        engines: Sequence[EngineLike] = ("model", "sim"),
        points: int = 8,
        budget: str = "quick",
        seed: int | None = 0,
        name: str = "",
    ) -> "Campaign":
        """A campaign over registered scenario names and/or Scenario objects."""
        entries = []
        for item in scenarios:
            scenario = (
                api.scenario(item, points=points, budget=budget, seed=seed)
                if isinstance(item, str)
                else item
            )
            entries.append(CampaignEntry(scenario=scenario, engines=tuple(engines)))
        return cls(entries=tuple(entries), name=name)

    # ------------------------------------------------------------ serialisation
    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON plan (the inverse of :meth:`from_dict`).

        Only registry-name engines serialise; campaigns holding engine
        *instances* are executable but not round-trippable.
        """
        entries = []
        for entry in self.entries:
            for engine in entry.engines:
                if not isinstance(engine, str):
                    raise ValidationError(
                        "campaigns holding engine instances cannot be serialised; "
                        "use registry engine names"
                    )
            item: Dict[str, Any] = {
                "scenario": entry.scenario.to_dict(),
                "engines": list(entry.engines),
            }
            if entry.label:
                item["label"] = entry.label
            entries.append(item)
        return {"name": self.name, "entries": entries}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Campaign":
        """Rebuild a plan from :meth:`to_dict` output or a hand-written manifest.

        An entry's ``scenario`` may be a full scenario object or a registered
        scenario *name*; named entries accept ``points``, ``budget`` and
        ``seed`` fields, and full-scenario entries accept ``budget``/``seed``
        as statistics-budget overrides.
        """
        if not isinstance(data, dict) or "entries" not in data:
            raise ValidationError("a campaign plan must be an object with 'entries'")
        entries = []
        for item in data["entries"]:
            if not isinstance(item, dict) or "scenario" not in item:
                raise ValidationError("each campaign entry must be an object with 'scenario'")
            target = item["scenario"]
            budget = item.get("budget")
            seed = item.get("seed")
            if isinstance(target, str):
                scenario = api.scenario(
                    target,
                    points=int(item.get("points", 8)),
                    budget=budget if budget is not None else "quick",
                    seed=seed if seed is not None else 0,
                )
            elif isinstance(target, dict):
                scenario = Scenario.from_dict(target)
                if "points" in item:
                    scenario = scenario.with_points(int(item["points"]))
                if budget is not None:
                    scenario = scenario.with_sim(
                        api.simulation_budget(
                            budget, seed if seed is not None else scenario.sim.seed
                        )
                    )
                elif seed is not None:
                    scenario = scenario.with_seed(seed)
            else:
                raise ValidationError(
                    "entry 'scenario' must be a registered name or a scenario object"
                )
            entries.append(
                CampaignEntry(
                    scenario=scenario,
                    engines=tuple(item.get("engines", ("model", "sim"))),
                    label=str(item.get("label", "")),
                )
            )
        return cls(entries=tuple(entries), name=str(data.get("name", "")))

    def to_json(self, path: str | Path) -> Path:
        """Write the plan to ``path`` as JSON and return the path."""
        return dump_json(self.to_dict(), path)

    @classmethod
    def from_json(cls, path: str | Path) -> "Campaign":
        """Load a plan previously written with :meth:`to_json` (or hand-written)."""
        data = load_json(path)
        if not isinstance(data, dict):
            raise ValidationError(f"campaign plan {path} does not hold a JSON object")
        return cls.from_dict(data)


# --------------------------------------------------------------------------- #
# Tasks and streaming events
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class CampaignTask:
    """One flattened unit of work: one engine at one operating point."""

    entry_index: int
    label: str
    engine_index: int
    engine: str
    point_index: int
    lambda_g: float
    #: content address in the result store; ``None`` when the task is not
    #: cacheable (engine given as an instance, or the store is disabled)
    cache_key: Optional[str] = None


@dataclass(frozen=True)
class TaskCompleted:
    """Streamed per finished task: the record plus progress counters."""

    task: CampaignTask
    record: RunRecord
    from_cache: bool
    done: int
    total: int
    elapsed_seconds: float


@dataclass(frozen=True)
class CampaignProgress:
    """Streamed at the start and end of an execution (and cheap to emit)."""

    done: int
    total: int
    cache_hits: int
    elapsed_seconds: float


CampaignEvent = Union[TaskCompleted, CampaignProgress]


# --------------------------------------------------------------------------- #
# The result of a collected execution
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class CampaignResult:
    """Everything one :meth:`CampaignExecutor.collect` call produced."""

    campaign: Campaign
    labels: Tuple[str, ...]
    runsets: Tuple[RunSet, ...]
    cache_hits: int
    cache_misses: int
    elapsed_seconds: float

    @property
    def total_tasks(self) -> int:
        return self.cache_hits + self.cache_misses

    def runset(self, label: str) -> RunSet:
        """The :class:`~repro.api.RunSet` of the entry labelled ``label``."""
        for candidate, runset in zip(self.labels, self.runsets):
            if candidate == label:
                return runset
        raise ValidationError(
            f"campaign has no entry labelled {label!r}; available: {self.labels}"
        )

    def __iter__(self) -> Iterator[Tuple[str, RunSet]]:
        return iter(zip(self.labels, self.runsets))

    def describe(self) -> str:
        return (
            f"{self.campaign.describe()}; {self.total_tasks} tasks in "
            f"{self.elapsed_seconds:.2f} s ({self.cache_hits} cached, "
            f"{self.cache_misses} computed)"
        )


# --------------------------------------------------------------------------- #
# The executor
# --------------------------------------------------------------------------- #
class CampaignExecutor:
    """Flatten a campaign into one task queue and execute it, streaming results.

    Parameters
    ----------
    campaign:
        The plan to execute.  Engines are resolved eagerly, so invalid
        engine sets fail here rather than mid-stream.
    parallel:
        Fan expensive engines' cache misses out over one process pool shared
        by *all* scenarios of the campaign.  Every task is reproducible from
        the scenario's seed alone, so parallel and sequential executions are
        bit-identical — only wall-clock changes.
    max_workers:
        Pool size; defaults to the CPU count, capped by the number of pool
        tasks.
    store:
        The content-addressed result store backing the execution.  The
        default (``"default"``) resolves ``REPRO_STORE`` /
        ``~/.cache/repro``; pass a :class:`~repro.store.ResultStore` to pin
        a location or ``None`` to disable caching entirely (every task is
        computed fresh and nothing is written).
    """

    def __init__(
        self,
        campaign: Campaign,
        *,
        parallel: bool = False,
        max_workers: Optional[int] = None,
        store: Union[ResultStore, None, str] = "default",
    ) -> None:
        self.campaign = campaign
        self.parallel = parallel
        self.max_workers = max_workers
        if store == "default":
            self.store: Optional[ResultStore] = ResultStore()
        elif store is None:
            self.store = None
        elif isinstance(store, ResultStore):
            self.store = store
        else:
            raise ValidationError(
                "store must be a ResultStore, None, or the string 'default'"
            )
        self._labels = campaign.labels
        #: resolved engine instances, one tuple per entry (validates names,
        #: duplicates and emptiness up front)
        self._engines: Tuple[Tuple[Engine, ...], ...] = tuple(
            resolve_engines(entry.engines) for entry in campaign.entries
        )

    # -------------------------------------------------------------- task queue
    def tasks(self) -> Tuple[CampaignTask, ...]:
        """The flattened (scenario, engine, operating point) work queue.

        Cache keys are computed here, against the *current* kernel/scheduler
        switches, so two executions under different switches address
        different records.
        """
        switches = kernel_switches() if self.store is not None else None
        queue: List[CampaignTask] = []
        for entry_index, entry in enumerate(self.campaign.entries):
            label = self._labels[entry_index]
            engines = self._engines[entry_index]
            for engine_index, engine in enumerate(engines):
                cacheable = self.store is not None and isinstance(
                    entry.engines[engine_index], str
                )
                for point_index, lambda_g in enumerate(entry.scenario.offered_traffic):
                    key = (
                        task_key(
                            entry.scenario, engine.name, lambda_g, switches=switches
                        )
                        if cacheable
                        else None
                    )
                    queue.append(
                        CampaignTask(
                            entry_index=entry_index,
                            label=label,
                            engine_index=engine_index,
                            engine=engine.name,
                            point_index=point_index,
                            lambda_g=float(lambda_g),
                            cache_key=key,
                        )
                    )
        return tuple(queue)

    # --------------------------------------------------------------- streaming
    def execute(self) -> Iterator[CampaignEvent]:
        """Execute the campaign, yielding events as tasks finish.

        The stream opens and closes with a :class:`CampaignProgress` event;
        in between, one :class:`TaskCompleted` (carrying the
        :class:`~repro.api.RunRecord`) is yielded per task, in completion
        order.  Records served from the result store are yielded first and
        marked ``from_cache=True``; they carry the wall-clock metadata of
        the run that originally produced them.
        """
        started = time.perf_counter()
        tasks = self.tasks()
        total = len(tasks)
        done = 0
        hits = 0
        yield CampaignProgress(0, total, 0, 0.0)

        # Serve cache hits first: instant, and it means an interrupted
        # campaign streams everything it already knows before simulating.
        misses: List[CampaignTask] = []
        for task in tasks:
            record = (
                self.store.get(task.cache_key)
                if self.store is not None and task.cache_key is not None
                else None
            )
            if record is None:
                misses.append(task)
                continue
            done += 1
            hits += 1
            yield TaskCompleted(
                task=task,
                record=record,
                from_cache=True,
                done=done,
                total=total,
                elapsed_seconds=time.perf_counter() - started,
            )

        inline: List[CampaignTask] = []
        pooled: List[CampaignTask] = []
        for task in misses:
            engine = self._engines[task.entry_index][task.engine_index]
            if self.parallel and getattr(engine, "expensive", True):
                pooled.append(task)
            else:
                inline.append(task)
        if len(pooled) == 1:
            # A pool of one buys no parallelism and pays process spawn plus
            # engine pickling — evaluate the lone task in this process.
            inline.extend(pooled)
            pooled = []

        for task in inline:
            yield self._complete(task, self._evaluate(task), started, done, total)
            done += 1

        if pooled:
            # Compile every pooled entry's network core in the parent before
            # forking: fork-started workers inherit the module-level caches,
            # spawn-started workers compile once per process, not per point.
            prepared = set()
            for task in pooled:
                slot = (task.entry_index, task.engine_index)
                if slot in prepared:
                    continue
                prepared.add(slot)
                engine = self._engines[task.entry_index][task.engine_index]
                prepare = getattr(engine, "prepare", None)
                if prepare is not None:
                    prepare(self.campaign.entries[task.entry_index].scenario)
            workers = (
                self.max_workers if self.max_workers is not None else (os.cpu_count() or 1)
            )
            workers = max(1, min(workers, len(pooled)))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    pool.submit(
                        _evaluate_point,
                        self._engines[task.entry_index][task.engine_index],
                        self.campaign.entries[task.entry_index].scenario,
                        task.lambda_g,
                    ): task
                    for task in pooled
                }
                for future in as_completed(futures):
                    task = futures[future]
                    yield self._complete(task, future.result(), started, done, total)
                    done += 1

        yield CampaignProgress(done, total, hits, time.perf_counter() - started)

    def _evaluate(self, task: CampaignTask) -> RunRecord:
        engine = self._engines[task.entry_index][task.engine_index]
        scenario = self.campaign.entries[task.entry_index].scenario
        return engine.evaluate(scenario, task.lambda_g)

    def _complete(
        self,
        task: CampaignTask,
        record: RunRecord,
        started: float,
        done: int,
        total: int,
    ) -> TaskCompleted:
        """Persist a freshly computed record and wrap it as an event."""
        if self.store is not None and task.cache_key is not None:
            self.store.put(task.cache_key, record)
        return TaskCompleted(
            task=task,
            record=record,
            from_cache=False,
            done=done + 1,
            total=total,
            elapsed_seconds=time.perf_counter() - started,
        )

    # ---------------------------------------------------------------- blocking
    def collect(
        self, *, on_event: Optional[Callable[[CampaignEvent], None]] = None
    ) -> CampaignResult:
        """Drain :meth:`execute` and assemble one RunSet per campaign entry.

        Records are re-ordered engine-major, load-grid-minor inside each
        entry — exactly the :func:`repro.api.run` record order — regardless
        of the streaming completion order, so parallel and cached executions
        assemble identical RunSets.  ``on_event`` (when given) observes every
        streamed event, which is how the CLI renders live progress without
        re-implementing collection.
        """
        records: Dict[Tuple[int, int, int], RunRecord] = {}
        hits = 0
        misses = 0
        elapsed = 0.0
        for event in self.execute():
            if on_event is not None:
                on_event(event)
            if isinstance(event, TaskCompleted):
                task = event.task
                records[(task.entry_index, task.engine_index, task.point_index)] = (
                    event.record
                )
                if event.from_cache:
                    hits += 1
                else:
                    misses += 1
            else:
                elapsed = max(elapsed, event.elapsed_seconds)
        runsets = []
        for entry_index, entry in enumerate(self.campaign.entries):
            ordered = tuple(
                records[(entry_index, engine_index, point_index)]
                for engine_index in range(len(self._engines[entry_index]))
                for point_index in range(len(entry.scenario.offered_traffic))
            )
            runsets.append(RunSet(scenario=entry.scenario, records=ordered))
        return CampaignResult(
            campaign=self.campaign,
            labels=self._labels,
            runsets=tuple(runsets),
            cache_hits=hits,
            cache_misses=misses,
            elapsed_seconds=elapsed,
        )


def run_campaign(
    campaign: Campaign,
    *,
    parallel: bool = False,
    max_workers: Optional[int] = None,
    store: Union[ResultStore, None, str] = "default",
    on_event: Optional[Callable[[CampaignEvent], None]] = None,
) -> CampaignResult:
    """Execute ``campaign`` and block for the full :class:`CampaignResult`."""
    executor = CampaignExecutor(
        campaign, parallel=parallel, max_workers=max_workers, store=store
    )
    return executor.collect(on_event=on_event)
