"""The Campaign API: multi-scenario execution plans with streaming progress.

The paper's deliverable is a model-vs-simulation *comparison across many
system organisations*; one :func:`repro.api.run` call evaluates exactly one
scenario, so every figure/table/ablation driver used to hand-roll its own
loop and pay a fresh process pool per scenario.  This module treats the whole
experiment campaign as one schedulable unit:

* :class:`Campaign` — a declarative, JSON round-trippable plan holding many
  named entries, each an independent (:class:`~repro.api.Scenario`, engine
  set) pair.  Plans serialise with :meth:`Campaign.to_json` /
  :meth:`Campaign.from_json`; plan files may also reference registered
  scenario *names* with per-entry ``points``/``budget``/``seed`` overrides,
  so a campaign manifest is a small versionable artifact.
* :class:`CampaignExecutor` — flattens every (scenario, engine, lambda_g)
  task of the plan into **one work queue** and fans the expensive misses out
  over a **single shared process pool**: scenario-level parallelism for
  free, no per-scenario pool churn.  Where that pool lives is pluggable
  through :class:`WorkerBackend` — :class:`EphemeralPoolBackend` (the
  default) builds one pool per campaign, while the campaign service's
  :class:`~repro.service.daemon.PersistentPoolBackend` reuses a warm,
  long-lived daemon pool across campaigns.  Execution is *streaming* —
  :meth:`~CampaignExecutor.execute` yields a :class:`TaskCompleted` event
  (carrying the :class:`~repro.api.RunRecord`) per finished task plus
  :class:`CampaignProgress` events with done/total counts and elapsed time —
  and :meth:`~CampaignExecutor.collect` is the blocking wrapper that
  preserves ``run()``-style ergonomics, assembling one
  :class:`~repro.api.RunSet` per entry.
* a :class:`RetryPolicy` makes unattended campaigns survive their workers:
  a pooled task whose worker **crashes** (the pool breaks) or **hangs**
  (exceeds the per-task timeout; the worker is killed) is re-queued onto a
  fresh pool up to ``max_attempts`` times — each re-queue streams a
  :class:`TaskRetried` event — and a task that exhausts its attempts streams
  a structured :class:`TaskFailed` event instead of taking down the whole
  campaign.  :meth:`~CampaignExecutor.collect` then either raises a
  :class:`CampaignExecutionError` (``strict=True``, the default) or returns
  partial :class:`~repro.api.RunSet`\\ s with the failures attached as
  metadata (``strict=False``).  Retried tasks are re-evaluated from the
  scenario seed alone, so a retried record is bit-identical to one produced
  by a crash-free run.
* the **content-addressed result store** (:mod:`repro.store`) backs every
  execution by default: tasks are keyed by a hash of the scenario JSON,
  engine name, operating point (the seed lives in the scenario) and the
  active kernel/scheduler switches, so re-running a campaign re-simulates
  only what changed and an interrupted campaign resumes — the golden-seed
  discipline guarantees cached records are bit-identical to fresh runs.

:func:`repro.api.run` is a thin one-scenario campaign over this machinery.

Quick start::

    from repro import api
    from repro.campaign import Campaign, CampaignExecutor

    plan = Campaign.from_scenarios(("fig3", "fig4"), points=6)
    for event in CampaignExecutor(plan, parallel=True).execute():
        print(event)                      # records + progress, as they finish
    result = CampaignExecutor(plan, parallel=True).collect()
    print(result.describe())              # second pass: all cache hits
    fig3 = result.runset("fig3")
"""

from __future__ import annotations

import json
import multiprocessing
import os
import shutil
import tempfile
import time
from concurrent.futures import (
    CancelledError,
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

import repro.api as api
from repro.api import (
    Engine,
    EngineLike,
    ENGINE_REGISTRY,
    RunRecord,
    RunSet,
    Scenario,
    _evaluate_point,
    resolve_engines,
)
from repro.store import ResultStore, kernel_switches, task_key
from repro.utils.serialization import dump_json, load_json
from repro.utils.validation import ValidationError

__all__ = [
    "Campaign",
    "CampaignEntry",
    "CampaignEvent",
    "CampaignExecutionError",
    "CampaignExecutor",
    "CampaignProgress",
    "CampaignResult",
    "CampaignTask",
    "EphemeralPoolBackend",
    "RetryPolicy",
    "TaskCompleted",
    "TaskFailed",
    "TaskRetried",
    "WorkerBackend",
    "run_campaign",
]


# --------------------------------------------------------------------------- #
# The declarative plan
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class CampaignEntry:
    """One named scenario of a campaign, with its own engine set.

    ``engines`` follows the :func:`repro.api.run` convention: registry names
    (JSON-safe, cacheable in the result store) or engine *instances*
    (programmatic patterns/overrides; executable but neither serialisable
    nor cached, because an instance's construction is not part of the task's
    content address).
    """

    scenario: Scenario
    engines: Tuple[EngineLike, ...] = ("model", "sim")
    label: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "engines", tuple(self.engines))
        if not self.engines:
            raise ValidationError("a campaign entry needs at least one engine")
        if not self.scenario.offered_traffic:
            raise ValidationError("offered_traffic must contain at least one value")
        for engine in self.engines:
            if isinstance(engine, str) and engine not in ENGINE_REGISTRY:
                raise ValidationError(
                    f"unknown engine {engine!r}; registered: {sorted(ENGINE_REGISTRY)}"
                )


@dataclass(frozen=True)
class Campaign:
    """A declarative multi-scenario execution plan."""

    entries: Tuple[CampaignEntry, ...]
    name: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "entries", tuple(self.entries))
        if not self.entries:
            raise ValidationError("a campaign needs at least one entry")
        self.labels  # noqa: B018 - validates label uniqueness eagerly

    @property
    def labels(self) -> Tuple[str, ...]:
        """One unique label per entry (entry label, scenario name, or index)."""
        labels: List[str] = []
        for index, entry in enumerate(self.entries):
            label = entry.label or entry.scenario.name or f"entry{index}"
            if label in labels:
                raise ValidationError(f"duplicate campaign entry label {label!r}")
            labels.append(label)
        return tuple(labels)

    @property
    def total_tasks(self) -> int:
        """Number of flattened (scenario, engine, operating point) tasks."""
        return sum(
            len(entry.engines) * len(entry.scenario.offered_traffic)
            for entry in self.entries
        )

    def describe(self) -> str:
        label = self.name or "campaign"
        return (
            f"{label}: {len(self.entries)} scenarios, {self.total_tasks} tasks "
            f"({', '.join(self.labels)})"
        )

    # ------------------------------------------------------------ construction
    @classmethod
    def from_scenarios(
        cls,
        scenarios: Iterable[Union[str, Scenario]],
        *,
        engines: Sequence[EngineLike] = ("model", "sim"),
        points: int = 8,
        budget: str = "quick",
        seed: int | None = 0,
        name: str = "",
    ) -> "Campaign":
        """A campaign over registered scenario names and/or Scenario objects."""
        entries = []
        for item in scenarios:
            scenario = (
                api.scenario(item, points=points, budget=budget, seed=seed)
                if isinstance(item, str)
                else item
            )
            entries.append(CampaignEntry(scenario=scenario, engines=tuple(engines)))
        return cls(entries=tuple(entries), name=name)

    # ------------------------------------------------------------ serialisation
    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON plan (the inverse of :meth:`from_dict`).

        Only registry-name engines serialise; campaigns holding engine
        *instances* are executable but not round-trippable.
        """
        entries = []
        for entry in self.entries:
            for engine in entry.engines:
                if not isinstance(engine, str):
                    raise ValidationError(
                        "campaigns holding engine instances cannot be serialised; "
                        "use registry engine names"
                    )
            item: Dict[str, Any] = {
                "scenario": entry.scenario.to_dict(),
                "engines": list(entry.engines),
            }
            if entry.label:
                item["label"] = entry.label
            entries.append(item)
        return {"name": self.name, "entries": entries}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Campaign":
        """Rebuild a plan from :meth:`to_dict` output or a hand-written manifest.

        An entry's ``scenario`` may be a full scenario object or a registered
        scenario *name*; named entries accept ``points``, ``budget`` and
        ``seed`` fields, and full-scenario entries accept ``budget``/``seed``
        as statistics-budget overrides.
        """
        if not isinstance(data, dict) or "entries" not in data:
            raise ValidationError("a campaign plan must be an object with 'entries'")
        entries = []
        for item in data["entries"]:
            if not isinstance(item, dict) or "scenario" not in item:
                raise ValidationError("each campaign entry must be an object with 'scenario'")
            target = item["scenario"]
            budget = item.get("budget")
            seed = item.get("seed")
            if isinstance(target, str):
                scenario = api.scenario(
                    target,
                    points=int(item.get("points", 8)),
                    budget=budget if budget is not None else "quick",
                    seed=seed if seed is not None else 0,
                )
            elif isinstance(target, dict):
                scenario = Scenario.from_dict(target)
                if "points" in item:
                    scenario = scenario.with_points(int(item["points"]))
                if budget is not None:
                    scenario = scenario.with_sim(
                        api.simulation_budget(
                            budget, seed if seed is not None else scenario.sim.seed
                        )
                    )
                elif seed is not None:
                    scenario = scenario.with_seed(seed)
            else:
                raise ValidationError(
                    "entry 'scenario' must be a registered name or a scenario object"
                )
            entries.append(
                CampaignEntry(
                    scenario=scenario,
                    engines=tuple(item.get("engines", ("model", "sim"))),
                    label=str(item.get("label", "")),
                )
            )
        return cls(entries=tuple(entries), name=str(data.get("name", "")))

    def to_json(self, path: str | Path) -> Path:
        """Write the plan to ``path`` as JSON and return the path."""
        return dump_json(self.to_dict(), path)

    @classmethod
    def from_json(cls, path: str | Path) -> "Campaign":
        """Load a plan previously written with :meth:`to_json` (or hand-written)."""
        data = load_json(path)
        if not isinstance(data, dict):
            raise ValidationError(f"campaign plan {path} does not hold a JSON object")
        return cls.from_dict(data)


# --------------------------------------------------------------------------- #
# Retry policy
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class RetryPolicy:
    """How the executor treats tasks whose workers fail.

    Attributes
    ----------
    max_attempts:
        Total attempts a task gets (first run included).  ``1`` means no
        retries: a failing task goes straight to :class:`TaskFailed`.
    timeout_seconds:
        Per-task wall-clock budget, measured from the moment a worker picks
        the task up.  A pooled task over budget has its worker killed and is
        re-queued (the timeout is the only way a hung worker ever returns);
        ``None`` disables the timeout.  Inline tasks honour the timeout too:
        when one is set, each inline attempt runs in a disposable child
        process (the kill harness) so a hung evaluation can be reclaimed —
        without a timeout they run in the calling process as before.
    backoff_seconds:
        Sleep before re-queuing a failed task (grows by
        ``backoff_multiplier`` per prior attempt).  ``0`` retries
        immediately — the right default for crash recovery, where the
        failure is not load-dependent.
    backoff_multiplier:
        Exponential factor applied per additional attempt.
    """

    max_attempts: int = 3
    timeout_seconds: Optional[float] = None
    backoff_seconds: float = 0.0
    backoff_multiplier: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValidationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ValidationError(
                f"timeout_seconds must be > 0 or None, got {self.timeout_seconds}"
            )
        if self.backoff_seconds < 0:
            raise ValidationError(
                f"backoff_seconds must be >= 0, got {self.backoff_seconds}"
            )
        if self.backoff_multiplier < 1:
            raise ValidationError(
                f"backoff_multiplier must be >= 1, got {self.backoff_multiplier}"
            )

    def delay_before(self, attempt: int) -> float:
        """Backoff before attempt number ``attempt`` (2-based: first retry)."""
        if attempt <= 1 or self.backoff_seconds == 0:
            return 0.0
        return self.backoff_seconds * self.backoff_multiplier ** (attempt - 2)


#: The executor default: one attempt, no timeout.  Failures still surface as
#: structured :class:`TaskFailed` events (never a mid-stream exception), so
#: the pre-retry behaviour — collect() raising on the first failure — is
#: preserved through strict collection rather than a crashed campaign.
NO_RETRY = RetryPolicy(max_attempts=1)


# --------------------------------------------------------------------------- #
# Tasks and streaming events
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class CampaignTask:
    """One flattened unit of work: one engine at one operating point."""

    entry_index: int
    label: str
    engine_index: int
    engine: str
    point_index: int
    lambda_g: float
    #: content address in the result store; ``None`` when the task is not
    #: cacheable (engine given as an instance, or the store is disabled)
    cache_key: Optional[str] = None

    @property
    def task_id(self) -> str:
        """Human-stable identity used by fault injection and failure reports."""
        return f"{self.label}:{self.engine}:{self.point_index}"


@dataclass(frozen=True)
class TaskCompleted:
    """Streamed per finished task: the record plus progress counters."""

    task: CampaignTask
    record: RunRecord
    from_cache: bool
    done: int
    total: int
    elapsed_seconds: float


@dataclass(frozen=True)
class TaskRetried:
    """Streamed when a failed task is re-queued for another attempt."""

    task: CampaignTask
    #: the attempt number that just failed (1-based)
    attempt: int
    max_attempts: int
    #: what happened: exception repr, "worker crashed …" or "timed out …"
    error: str
    elapsed_seconds: float


@dataclass(frozen=True)
class TaskFailed:
    """Streamed when a task exhausts its retry budget: the structured failure.

    The campaign keeps going; strict :meth:`CampaignExecutor.collect` raises
    a :class:`CampaignExecutionError` carrying these once the stream drains,
    and non-strict collection returns them on the :class:`CampaignResult`.
    """

    task: CampaignTask
    #: attempts consumed (== the policy's max_attempts)
    attempts: int
    error: str
    done: int
    total: int
    elapsed_seconds: float


@dataclass(frozen=True)
class CampaignProgress:
    """Streamed at the start and end of an execution (and cheap to emit)."""

    done: int
    total: int
    cache_hits: int
    elapsed_seconds: float
    failed: int = 0
    retries: int = 0


CampaignEvent = Union[TaskCompleted, TaskRetried, TaskFailed, CampaignProgress]


class CampaignExecutionError(RuntimeError):
    """Raised by strict collection when tasks exhausted their retry budget."""

    def __init__(self, failures: Sequence[TaskFailed]) -> None:
        self.failures: Tuple[TaskFailed, ...] = tuple(failures)
        lines = [
            f"{len(self.failures)} campaign task(s) failed after exhausting retries:"
        ]
        lines.extend(
            f"  {failure.task.task_id} (lambda_g={failure.task.lambda_g:.6g}, "
            f"{failure.attempts} attempts): {failure.error}"
            for failure in self.failures
        )
        super().__init__("\n".join(lines))


# --------------------------------------------------------------------------- #
# The result of a collected execution
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class CampaignResult:
    """Everything one :meth:`CampaignExecutor.collect` call produced."""

    campaign: Campaign
    labels: Tuple[str, ...]
    runsets: Tuple[RunSet, ...]
    cache_hits: int
    cache_misses: int
    elapsed_seconds: float
    #: tasks that exhausted their retry budget (non-strict collection only;
    #: their records are absent from the runsets)
    failures: Tuple[TaskFailed, ...] = ()
    #: re-queues that happened along the way (0 on a healthy campaign)
    task_retries: int = 0

    @property
    def total_tasks(self) -> int:
        return self.cache_hits + self.cache_misses + len(self.failures)

    def runset(self, label: str) -> RunSet:
        """The :class:`~repro.api.RunSet` of the entry labelled ``label``."""
        for candidate, runset in zip(self.labels, self.runsets):
            if candidate == label:
                return runset
        raise ValidationError(
            f"campaign has no entry labelled {label!r}; available: {self.labels}"
        )

    def __iter__(self) -> Iterator[Tuple[str, RunSet]]:
        return iter(zip(self.labels, self.runsets))

    def describe(self) -> str:
        text = (
            f"{self.campaign.describe()}; {self.total_tasks} tasks in "
            f"{self.elapsed_seconds:.2f} s ({self.cache_hits} cached, "
            f"{self.cache_misses} computed)"
        )
        if self.task_retries:
            text += f", {self.task_retries} retries"
        if self.failures:
            text += f", {len(self.failures)} FAILED"
        return text


# --------------------------------------------------------------------------- #
# Worker-side entry point and fault injection
# --------------------------------------------------------------------------- #
#: Environment variable holding the fault-injection spec (tests / CI only).
FAULT_ENV = "REPRO_CAMPAIGN_FAULT"

#: Sentinel for "crash attribution not attempted yet" inside a pool round
#: (``None`` already means "attempted and failed").
_UNDETERMINED = object()


def _maybe_inject_fault(task_id: str) -> None:
    """Deterministic worker-fault injection for tests and the CI crash job.

    ``REPRO_CAMPAIGN_FAULT`` holds a JSON object ``{"kind": "crash"|"hang",
    "task": "<label>:<engine>:<point_index>", "marker": "<path>"}``.  The
    matching pooled task triggers the fault exactly once — the marker file
    records that it fired — so the retried attempt succeeds and a test can
    prove crash recovery produces records identical to a clean run.
    """
    spec = os.environ.get(FAULT_ENV)
    if not spec:
        return
    try:
        fault = json.loads(spec)
        kind = fault["kind"]
        target = fault["task"]
        marker = Path(fault["marker"])
    except (ValueError, KeyError, TypeError):
        return
    if target != task_id or marker.exists():
        return
    marker.parent.mkdir(parents=True, exist_ok=True)
    marker.touch()
    if kind == "crash":
        os._exit(3)  # die the way a segfaulting / OOM-killed worker dies
    if kind == "hang":
        time.sleep(3600.0)  # wedge: only the task timeout can reclaim this


def _note_worker_task(registry_dir: Optional[str], task_id: str) -> None:
    """Tag this worker's pid with the task it is about to run.

    The executor reads these tags when a pool breaks: the dead pids name the
    tasks that actually took workers down, so innocent casualties of the
    shared crash re-queue without being charged an attempt.  Written before
    the fault hook so even an injected crash leaves its tag behind.
    """
    if registry_dir is None:
        return
    try:
        Path(registry_dir, str(os.getpid())).write_text(task_id, encoding="utf-8")
    except OSError:  # pragma: no cover - registry loss degrades to charge-all
        pass


def _pool_evaluate(
    engine: Engine,
    scenario: Scenario,
    lambda_g: float,
    task_id: str,
    registry_dir: Optional[str] = None,
) -> RunRecord:
    """Process-pool worker: evaluate one campaign task (fault hook included)."""
    _note_worker_task(registry_dir, task_id)
    _maybe_inject_fault(task_id)
    return _evaluate_point(engine, scenario, lambda_g)


#: One per-task outcome inside a chunk: ``("ok", record)`` or
#: ``("error", "<repr>")``.
ChunkOutcome = Tuple[str, Any]


def _pool_evaluate_chunk(
    engine: Engine,
    scenario: Scenario,
    items: Sequence[Tuple[float, str]],
    registry_dir: Optional[str] = None,
) -> List[ChunkOutcome]:
    """Process-pool worker: evaluate a chunk of tasks for one (engine, scenario).

    ``items`` is a sequence of ``(lambda_g, task_id)`` pairs.  Chunking
    amortises the per-submission IPC and engine/scenario pickling over many
    operating points — one pickled engine per chunk instead of per task —
    which is what keeps the cold 2-worker fan-out above 1x.

    An ordinary evaluation error is contained to its task: the chunk keeps
    going and reports per-task outcomes, so one bad operating point never
    costs its chunk-mates an attempt.  (A *crash* still kills the whole
    worker and with it the chunk — the executor's crash attribution charges
    the tagged culprit and re-queues the rest uncharged.)
    """
    outcomes: List[ChunkOutcome] = []
    for lambda_g, task_id in items:
        _note_worker_task(registry_dir, task_id)
        _maybe_inject_fault(task_id)
        try:
            record = _evaluate_point(engine, scenario, lambda_g)
        except Exception as error:  # noqa: BLE001 - contained per-task failure
            outcomes.append(("error", repr(error)))
        else:
            outcomes.append(("ok", record))
    return outcomes


class _HarnessFailure(RuntimeError):
    """An inline kill-harness failure carrying a pre-formatted reason string."""


def _inline_task_main(conn, engine, scenario, lambda_g, task_id) -> None:
    """Disposable-process entry for inline tasks running under a timeout."""
    try:
        record = _pool_evaluate(engine, scenario, lambda_g, task_id)
    except BaseException as error:  # noqa: BLE001 - marshalled to the parent
        try:
            conn.send(("error", repr(error)))
        except Exception:  # pragma: no cover - parent already gone
            pass
    else:
        conn.send(("ok", record))
    finally:
        conn.close()


# --------------------------------------------------------------------------- #
# Worker backends
# --------------------------------------------------------------------------- #
class WorkerBackend:
    """Where pooled campaign tasks execute.

    :class:`CampaignExecutor` is backend-agnostic: it drives rounds of
    submissions through this interface, so the same :class:`RetryPolicy`
    crash/timeout machinery applies whether the pool lives for one campaign
    (:class:`EphemeralPoolBackend`, the default) or persists across many
    (:class:`repro.service.daemon.PersistentPoolBackend`).

    Round protocol, driven once per pool round of one execution::

        begin_round(workers) -> effective concurrency
        submit(...) per task -> Future
        note_workers()                  # snapshot pids for crash forensics
        [dead_worker_pids() / kill_workers() as failures demand]
        end_round(broken=...)           # always runs, via finally

    ``close()`` releases whatever state outlives a round (nothing, for the
    ephemeral backend).
    """

    #: Persistent backends keep warm workers between campaigns; the executor
    #: then never demotes a lone pooled task to inline execution.
    persistent = False

    def prepare_entry(self, engine: Engine, scenario: Scenario) -> None:
        """Warm one (engine, scenario) pair before its tasks are submitted."""
        prepare = getattr(engine, "prepare", None)
        if prepare is not None:
            prepare(scenario)

    def begin_round(self, workers: int) -> int:
        """Make the pool ready for one round; returns the concurrency to
        assume when clamping the per-task timeout clock."""
        raise NotImplementedError

    def submit(
        self,
        engine: Engine,
        scenario: Scenario,
        lambda_g: float,
        task_id: str,
        registry_dir: Optional[str],
        *,
        named_engine: bool,
    ) -> Future:
        """Submit one task; ``named_engine`` marks registry engines, which a
        persistent backend may cache worker-side by (name, scenario)."""
        raise NotImplementedError

    def submit_chunk(
        self,
        engine: Engine,
        scenario: Scenario,
        items: Sequence[Tuple[float, str]],
        registry_dir: Optional[str],
        *,
        named_engine: bool,
    ) -> Future:
        """Submit a chunk of tasks sharing one (engine, scenario).

        ``items`` holds ``(lambda_g, task_id)`` pairs.  The future resolves
        to a list of :data:`ChunkOutcome` aligned with ``items`` — per-task
        ``("ok", record)`` / ``("error", repr)`` — so an evaluation error in
        one task never fails the whole chunk.  A chunk-level exception from
        the future means infrastructure died (broken pool, lost runner),
        not that a task mis-evaluated.
        """
        raise NotImplementedError

    def note_workers(self) -> None:
        """Snapshot the pool's worker pids (after the round's submissions)."""

    def dead_worker_pids(self) -> Tuple[int, ...]:
        """Pids from the last snapshot whose processes have died."""
        return ()

    def kill_workers(self) -> None:
        """Terminate every worker (the timeout reclaim path)."""

    def end_round(self, *, broken: bool) -> None:
        """Finish the round; ``broken`` reports a poisoned pool."""

    def close(self) -> None:
        """Release any cross-round state."""


class EphemeralPoolBackend(WorkerBackend):
    """One fresh :class:`ProcessPoolExecutor` per round — the classic mode.

    A crashed worker poisons its whole pool, so recovery is simply a new
    pool over whatever the old one left unfinished; nothing survives the
    round, and fork-started workers inherit the caches
    :meth:`~WorkerBackend.prepare_entry` warmed in this process.
    """

    def __init__(self) -> None:
        self._pool: Optional[ProcessPoolExecutor] = None
        self._workers: Dict[int, Any] = {}

    def begin_round(self, workers: int) -> int:
        self._pool = ProcessPoolExecutor(max_workers=workers)
        self._workers = {}
        return workers

    def submit(
        self,
        engine: Engine,
        scenario: Scenario,
        lambda_g: float,
        task_id: str,
        registry_dir: Optional[str],
        *,
        named_engine: bool,
    ) -> Future:
        return self._pool.submit(
            _pool_evaluate, engine, scenario, lambda_g, task_id, registry_dir
        )

    def submit_chunk(
        self,
        engine: Engine,
        scenario: Scenario,
        items: Sequence[Tuple[float, str]],
        registry_dir: Optional[str],
        *,
        named_engine: bool,
    ) -> Future:
        return self._pool.submit(
            _pool_evaluate_chunk, engine, scenario, tuple(items), registry_dir
        )

    def note_workers(self) -> None:
        self._workers = dict(getattr(self._pool, "_processes", None) or {})

    def dead_worker_pids(self) -> Tuple[int, ...]:
        return tuple(
            pid for pid, process in self._workers.items() if not process.is_alive()
        )

    def kill_workers(self) -> None:
        processes = getattr(self._pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.terminate()
            except Exception:  # pragma: no cover - already-dead worker
                pass

    def end_round(self, *, broken: bool) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
            self._workers = {}


# --------------------------------------------------------------------------- #
# The executor
# --------------------------------------------------------------------------- #
class CampaignExecutor:
    """Flatten a campaign into one task queue and execute it, streaming results.

    Parameters
    ----------
    campaign:
        The plan to execute.  Engines are resolved eagerly, so invalid
        engine sets fail here rather than mid-stream.
    parallel:
        Fan expensive engines' cache misses out over one process pool shared
        by *all* scenarios of the campaign.  Every task is reproducible from
        the scenario's seed alone, so parallel and sequential executions are
        bit-identical — only wall-clock changes.
    max_workers:
        Pool size; defaults to the CPU count, capped by the number of pool
        tasks.
    store:
        The content-addressed result store backing the execution.  The
        default (``"default"``) resolves ``REPRO_STORE`` /
        ``~/.cache/repro``; pass a :class:`~repro.store.ResultStore` to pin
        a location or ``None`` to disable caching entirely (every task is
        computed fresh and nothing is written).
    retry:
        The :class:`RetryPolicy` applied to failing tasks.  The default
        (``None``) gives every task one attempt and no timeout; pass e.g.
        ``RetryPolicy(max_attempts=3, timeout_seconds=600)`` for unattended
        campaigns that must survive crashed or hung workers.
    backend:
        The :class:`WorkerBackend` pooled tasks execute on.  The default
        (``None``) builds a fresh :class:`EphemeralPoolBackend` — one
        process pool per campaign, the pre-service behaviour.  Pass a
        :class:`repro.service.daemon.PersistentPoolBackend` to run on a
        warm, long-lived worker daemon shared across campaigns.
    """

    def __init__(
        self,
        campaign: Campaign,
        *,
        parallel: bool = False,
        max_workers: Optional[int] = None,
        store: Union[ResultStore, None, str] = "default",
        retry: Optional[RetryPolicy] = None,
        backend: Optional[WorkerBackend] = None,
    ) -> None:
        self.campaign = campaign
        self.parallel = parallel
        self.max_workers = max_workers
        self.retry = retry if retry is not None else NO_RETRY
        self.backend = backend if backend is not None else EphemeralPoolBackend()
        if store == "default":
            self.store: Optional[ResultStore] = ResultStore()
        elif store is None:
            self.store = None
        elif isinstance(store, ResultStore):
            self.store = store
        else:
            raise ValidationError(
                "store must be a ResultStore, None, or the string 'default'"
            )
        self._labels = campaign.labels
        #: resolved engine instances, one tuple per entry (validates names,
        #: duplicates and emptiness up front)
        self._engines: Tuple[Tuple[Engine, ...], ...] = tuple(
            resolve_engines(entry.engines) for entry in campaign.entries
        )

    # -------------------------------------------------------------- task queue
    def tasks(self) -> Tuple[CampaignTask, ...]:
        """The flattened (scenario, engine, operating point) work queue.

        Cache keys are computed here, against the *current* kernel/scheduler
        switches, so two executions under different switches address
        different records.
        """
        switches = kernel_switches() if self.store is not None else None
        queue: List[CampaignTask] = []
        for entry_index, entry in enumerate(self.campaign.entries):
            label = self._labels[entry_index]
            engines = self._engines[entry_index]
            for engine_index, engine in enumerate(engines):
                cacheable = self.store is not None and isinstance(
                    entry.engines[engine_index], str
                )
                for point_index, lambda_g in enumerate(entry.scenario.offered_traffic):
                    key = (
                        task_key(
                            entry.scenario, engine.name, lambda_g, switches=switches
                        )
                        if cacheable
                        else None
                    )
                    queue.append(
                        CampaignTask(
                            entry_index=entry_index,
                            label=label,
                            engine_index=engine_index,
                            engine=engine.name,
                            point_index=point_index,
                            lambda_g=float(lambda_g),
                            cache_key=key,
                        )
                    )
        return tuple(queue)

    # --------------------------------------------------------------- streaming
    def execute(self) -> Iterator[CampaignEvent]:
        """Execute the campaign, yielding events as tasks finish.

        The stream opens and closes with a :class:`CampaignProgress` event;
        in between, one :class:`TaskCompleted` (carrying the
        :class:`~repro.api.RunRecord`) is yielded per task, in completion
        order.  Records served from the result store are yielded first and
        marked ``from_cache=True``; they carry the wall-clock metadata of
        the run that originally produced them.

        Task failures never escape as exceptions mid-stream: a failed
        attempt with retries left streams :class:`TaskRetried` and the task
        is re-queued (crashed pools are rebuilt, hung workers are killed at
        the retry policy's timeout), and a task that exhausts its attempts
        streams a structured :class:`TaskFailed` so the rest of the campaign
        completes regardless.
        """
        started = time.perf_counter()
        policy = self.retry
        tasks = self.tasks()
        total = len(tasks)
        done = 0
        hits = 0
        failed = 0
        retries = 0
        yield CampaignProgress(0, total, 0, 0.0)

        def _failure_event(
            task: CampaignTask, attempts_used: int, reason: str
        ) -> Union[TaskFailed, TaskRetried]:
            """Book a failed attempt: terminal TaskFailed or a TaskRetried."""
            nonlocal done, failed, retries
            if attempts_used >= policy.max_attempts:
                done += 1
                failed += 1
                return TaskFailed(
                    task=task,
                    attempts=attempts_used,
                    error=reason,
                    done=done,
                    total=total,
                    elapsed_seconds=time.perf_counter() - started,
                )
            retries += 1
            return TaskRetried(
                task=task,
                attempt=attempts_used,
                max_attempts=policy.max_attempts,
                error=reason,
                elapsed_seconds=time.perf_counter() - started,
            )

        # Serve cache hits first: instant, and it means an interrupted
        # campaign streams everything it already knows before simulating.
        misses: List[CampaignTask] = []
        for task in tasks:
            record = (
                self.store.get(task.cache_key)
                if self.store is not None and task.cache_key is not None
                else None
            )
            if record is None:
                misses.append(task)
                continue
            done += 1
            hits += 1
            yield TaskCompleted(
                task=task,
                record=record,
                from_cache=True,
                done=done,
                total=total,
                elapsed_seconds=time.perf_counter() - started,
            )

        inline: List[CampaignTask] = []
        pooled: List[CampaignTask] = []
        for task in misses:
            engine = self._engines[task.entry_index][task.engine_index]
            if self.parallel and getattr(engine, "expensive", True):
                pooled.append(task)
            else:
                inline.append(task)
        if len(pooled) == 1 and not self.backend.persistent:
            # A pool of one buys no parallelism and pays process spawn plus
            # engine pickling — evaluate the lone task in this process.  A
            # persistent backend keeps warm workers either way, so lone
            # tasks stay out of the serving process there.
            inline.extend(pooled)
            pooled = []

        for task in inline:
            attempt = 0
            while True:
                attempt += 1
                try:
                    record = self._evaluate_inline(task)
                except Exception as error:  # noqa: BLE001 - structured failure path
                    reason = (
                        str(error)
                        if isinstance(error, _HarnessFailure)
                        else repr(error)
                    )
                    event = _failure_event(task, attempt, reason)
                    yield event
                    if isinstance(event, TaskFailed):
                        break
                    delay = policy.delay_before(attempt + 1)
                    if delay > 0:
                        time.sleep(delay)
                    continue
                yield self._complete(task, record, started, done, total)
                done += 1
                break

        if pooled:
            # Compile every pooled entry's network core before the workers
            # see it.  The ephemeral backend prepares in this process —
            # fork-started workers inherit the module-level caches,
            # spawn-started workers compile once per process, not per point
            # — and the persistent backend additionally exports the compiled
            # tables to shared memory so daemon workers map instead of
            # rebuild.
            prepared = set()
            for task in pooled:
                slot = (task.entry_index, task.engine_index)
                if slot in prepared:
                    continue
                prepared.add(slot)
                engine = self._engines[task.entry_index][task.engine_index]
                self.backend.prepare_entry(
                    engine, self.campaign.entries[task.entry_index].scenario
                )

            # Per-execution worker-pid registry: workers tag their pid with
            # the task they run, which is what lets a broken pool charge the
            # actual culprits instead of every unfinished task.
            registry_dir = tempfile.mkdtemp(prefix="repro-campaign-pids-")
            attempts: Dict[CampaignTask, int] = {task: 0 for task in pooled}
            pending: List[CampaignTask] = list(pooled)
            try:
                while pending:
                    # One "round" per pool: a crashed worker poisons its
                    # whole process pool, so recovery means a fresh (or
                    # restarted) pool over everything the previous one left
                    # unfinished.
                    requeue: List[CampaignTask] = []
                    for event in self._pooled_round(
                        pending, attempts, requeue, _failure_event, started,
                        lambda: done, total, registry_dir,
                    ):
                        if isinstance(event, TaskCompleted):
                            done += 1
                        yield event
                    pending = requeue
                    if pending:
                        delay = max(
                            policy.delay_before(attempts[task] + 1)
                            for task in pending
                        )
                        if delay > 0:
                            time.sleep(delay)
            finally:
                shutil.rmtree(registry_dir, ignore_errors=True)

        yield CampaignProgress(
            done, total, hits, time.perf_counter() - started, failed, retries
        )

    def _pooled_round(
        self,
        pending: Sequence[CampaignTask],
        attempts: Dict[CampaignTask, int],
        requeue: List[CampaignTask],
        _failure_event: Callable[[CampaignTask, int, str], Union[TaskFailed, TaskRetried]],
        started: float,
        current_done: Callable[[], int],
        total: int,
        registry_dir: Optional[str] = None,
    ) -> Iterator[CampaignEvent]:
        """Run one backend round over ``pending``, streaming its events.

        Tasks that must run again land in ``requeue``: failed attempts with
        retries left (attempt counted), plus innocent casualties of a
        timeout kill or of *another* task's worker crash (attempt *not*
        counted — the culprit is known, from the kill itself or from the
        dead workers' pid tags).  Only when crash attribution fails — no
        dead pid observed, or no dead worker had tagged an unfinished task —
        is every unfinished task of the round charged an attempt, the
        fallback that makes a deterministic crasher converge in
        ``max_attempts`` rounds.
        """
        policy = self.retry
        backend = self.backend
        requested = (
            self.max_workers if self.max_workers is not None else (os.cpu_count() or 1)
        )
        workers = backend.begin_round(max(1, min(requested, len(pending))))
        # Chunked submission amortises per-task IPC/pickling: ~4 chunks per
        # worker keeps the pool load-balanced while an uneven task mix
        # drains.  The per-task timeout clock is per *future*, so any
        # timeout policy forces chunks of one — coarser chunks would let a
        # hung point hide behind its chunk-mates' budget.
        chunk_size = (
            1
            if policy.timeout_seconds is not None
            else max(1, len(pending) // (workers * 4))
        )
        broken = False
        try:
            futures: Dict[Future, Tuple[CampaignTask, ...]] = {}
            # Group by (entry, engine) so every chunk shares one pickled
            # engine + scenario, preserving submission order within a group.
            groups: Dict[Tuple[int, int], List[CampaignTask]] = {}
            for task in pending:
                groups.setdefault(
                    (task.entry_index, task.engine_index), []
                ).append(task)
            for (entry_index, engine_index), group in groups.items():
                entry = self.campaign.entries[entry_index]
                engine = self._engines[entry_index][engine_index]
                named = isinstance(entry.engines[engine_index], str)
                for start in range(0, len(group), chunk_size):
                    chunk = tuple(group[start : start + chunk_size])
                    futures[
                        backend.submit_chunk(
                            engine,
                            entry.scenario,
                            tuple((task.lambda_g, task.task_id) for task in chunk),
                            registry_dir,
                            named_engine=named,
                        )
                    ] = chunk
            backend.note_workers()
            outstanding: Set[Future] = set(futures)
            unresolved: Set[str] = {task.task_id for task in pending}
            crash_culprits: Any = _UNDETERMINED
            #: submission order; the executor feeds workers FIFO, so the
            #: first `workers` unresolved futures are the ones actually
            #: executing (a queued future reports running() the moment it
            #: enters the call queue, which must not start its clock)
            order: List[Future] = list(futures)
            deadlines: Dict[Future, float] = {}
            timed_out: Set[CampaignTask] = set()
            killed_for_timeout = False
            poll = (
                min(0.25, max(0.01, policy.timeout_seconds / 10))
                if policy.timeout_seconds is not None
                else None
            )
            while outstanding:
                finished, outstanding = wait(
                    outstanding, timeout=poll, return_when=FIRST_COMPLETED
                )
                for future in finished:
                    chunk = futures[future]
                    try:
                        outcomes = future.result()
                    except (BrokenProcessPool, CancelledError):
                        broken = True
                        for task in chunk:
                            if task in timed_out:
                                attempts[task] += 1
                                event = _failure_event(
                                    task,
                                    attempts[task],
                                    f"timed out after {policy.timeout_seconds:g} s "
                                    "(worker killed)",
                                )
                            elif killed_for_timeout:
                                # Innocent casualty of our own timeout kill:
                                # the culprit is known, so re-queue without
                                # charging an attempt (and without noise in
                                # the stream).
                                requeue.append(task)
                                continue
                            else:
                                if crash_culprits is _UNDETERMINED:
                                    crash_culprits = self._crash_culprits(
                                        registry_dir, unresolved
                                    )
                                if (
                                    crash_culprits is not None
                                    and task.task_id not in crash_culprits
                                ):
                                    # Collateral casualty of another task's
                                    # crash: the dead workers' pid tags name
                                    # the culprits, so re-queue without
                                    # charging an attempt.
                                    requeue.append(task)
                                    continue
                                attempts[task] += 1
                                event = _failure_event(
                                    task,
                                    attempts[task],
                                    "worker crashed (process pool broke before "
                                    "the task finished)",
                                )
                            yield event
                            if isinstance(event, TaskRetried):
                                requeue.append(task)
                    except Exception as error:  # noqa: BLE001 - infrastructure failure
                        # A chunk-level exception means the chunk's substrate
                        # died (a lost runner, a failed submission) — per-task
                        # evaluation errors come back as outcomes below.
                        # Every task of the chunk is charged one attempt;
                        # tasks our own timeout kill reclaimed keep the
                        # timeout label, and its innocent casualties re-queue
                        # uncharged exactly as on the broken-pool path.
                        for task in chunk:
                            unresolved.discard(task.task_id)
                            if task in timed_out:
                                attempts[task] += 1
                                event = _failure_event(
                                    task,
                                    attempts[task],
                                    f"timed out after {policy.timeout_seconds:g} s "
                                    "(worker killed)",
                                )
                            elif killed_for_timeout:
                                requeue.append(task)
                                continue
                            else:
                                attempts[task] += 1
                                event = _failure_event(
                                    task, attempts[task], repr(error)
                                )
                            yield event
                            if isinstance(event, TaskRetried):
                                requeue.append(task)
                    else:
                        for task, (status, payload) in zip(chunk, outcomes):
                            unresolved.discard(task.task_id)
                            if status == "ok":
                                yield TaskCompleted(
                                    task=task,
                                    record=self._persist(task, payload),
                                    from_cache=False,
                                    done=current_done() + 1,
                                    total=total,
                                    elapsed_seconds=time.perf_counter() - started,
                                )
                            else:
                                attempts[task] += 1
                                event = _failure_event(
                                    task, attempts[task], str(payload)
                                )
                                yield event
                                if isinstance(event, TaskRetried):
                                    requeue.append(task)
                if policy.timeout_seconds is not None and outstanding:
                    now = time.monotonic()
                    # The timeout clock starts when a worker picks the task
                    # up, not while it waits in the queue.  future.running()
                    # alone over-counts: the pool's call queue holds one
                    # task beyond the worker count and marks it running, so
                    # clamp the clock to the first `workers` unresolved
                    # futures in submission order — the executing set under
                    # the pool's FIFO feed.
                    executing = [
                        future for future in order if future in outstanding
                    ][:workers]
                    for future in executing:
                        if future not in deadlines and future.running():
                            deadlines[future] = now + policy.timeout_seconds
                    expired = [
                        future
                        for future in executing
                        if future in deadlines and now >= deadlines[future]
                    ]
                    if expired and not killed_for_timeout:
                        for future in expired:
                            # Chunks are size 1 whenever a timeout policy is
                            # active, so an expired future names exactly one
                            # hung task.
                            timed_out.update(futures[future])
                        killed_for_timeout = True
                        broken = True
                        # A hung worker never returns; killing the pool's
                        # processes resolves every outstanding future as
                        # broken, and the round's cleanup re-queues them.
                        backend.kill_workers()
        finally:
            backend.end_round(broken=broken)

    def _crash_culprits(
        self, registry_dir: Optional[str], unresolved: Set[str]
    ) -> Optional[Set[str]]:
        """Which unfinished tasks were running on the workers that died.

        Workers tag a per-pid registry file with their task id before
        picking it up, so when the pool breaks the dead pids name the tasks
        that actually took workers down.  Returns ``None`` when attribution
        is impossible (no dead pid observed, or no dead worker had tagged a
        still-unfinished task) — the caller then falls back to charging
        every unfinished task, which is what guarantees a deterministic
        crasher converges within ``max_attempts`` rounds.
        """
        if registry_dir is None:
            return None
        # A broken pool means a worker died abruptly, but its death may not
        # be *observable* yet: the pool's manager thread reaps workers
        # concurrently, and a lost waitpid race reads as "still alive"
        # (multiprocessing treats ECHILD as not-yet-started).  Poll briefly
        # until at least one death shows up rather than misattributing.
        deadline = time.monotonic() + 0.5
        dead = self.backend.dead_worker_pids()
        while not dead and time.monotonic() < deadline:
            time.sleep(0.02)
            dead = self.backend.dead_worker_pids()
        culprits: Set[str] = set()
        for pid in dead:
            try:
                tag = Path(registry_dir, str(pid)).read_text(encoding="utf-8")
            except OSError:
                continue  # died before tagging any task: attributes nothing
            culprits.add(tag)
        culprits &= unresolved
        return culprits or None

    def _evaluate(self, task: CampaignTask) -> RunRecord:
        engine = self._engines[task.entry_index][task.engine_index]
        scenario = self.campaign.entries[task.entry_index].scenario
        return engine.evaluate(scenario, task.lambda_g)

    def _evaluate_inline(self, task: CampaignTask) -> RunRecord:
        """One inline attempt, under the policy timeout when one is set.

        Without a timeout the task runs in this process — cheap engines,
        zero overhead, memoised models reused.  With one, each attempt runs
        in a disposable child process (the inline kill harness) so a hung
        evaluation can actually be reclaimed, extending the pooled path's
        timeout guarantee to inline tasks at the cost of a process spawn
        per attempt.
        """
        timeout = self.retry.timeout_seconds
        if timeout is None:
            return self._evaluate(task)
        engine = self._engines[task.entry_index][task.engine_index]
        scenario = self.campaign.entries[task.entry_index].scenario
        context = multiprocessing.get_context()
        receiver, sender = context.Pipe(duplex=False)
        process = context.Process(
            target=_inline_task_main,
            args=(sender, engine, scenario, task.lambda_g, task.task_id),
            daemon=True,
        )
        process.start()
        sender.close()
        try:
            if not receiver.poll(timeout):
                raise _HarnessFailure(
                    f"timed out after {timeout:g} s (inline worker killed)"
                )
            try:
                status, payload = receiver.recv()
            except EOFError:
                raise _HarnessFailure(
                    "worker crashed (inline harness process died before the "
                    "task finished)"
                ) from None
            if status == "ok":
                return payload
            raise _HarnessFailure(payload)
        finally:
            if process.is_alive():
                process.terminate()
            process.join()
            receiver.close()

    def _persist(self, task: CampaignTask, record: RunRecord) -> RunRecord:
        """Write a freshly computed record through to the store."""
        if self.store is not None and task.cache_key is not None:
            self.store.put(task.cache_key, record)
        return record

    def _complete(
        self,
        task: CampaignTask,
        record: RunRecord,
        started: float,
        done: int,
        total: int,
    ) -> TaskCompleted:
        """Persist a freshly computed record and wrap it as an event."""
        return TaskCompleted(
            task=task,
            record=self._persist(task, record),
            from_cache=False,
            done=done + 1,
            total=total,
            elapsed_seconds=time.perf_counter() - started,
        )

    # ---------------------------------------------------------------- blocking
    def collect(
        self,
        *,
        strict: bool = True,
        on_event: Optional[Callable[[CampaignEvent], None]] = None,
    ) -> CampaignResult:
        """Drain :meth:`execute` and assemble one RunSet per campaign entry.

        Records are re-ordered engine-major, load-grid-minor inside each
        entry — exactly the :func:`repro.api.run` record order — regardless
        of the streaming completion order, so parallel and cached executions
        assemble identical RunSets.  ``on_event`` (when given) observes every
        streamed event, which is how the CLI renders live progress without
        re-implementing collection.

        ``strict`` decides what happens when tasks exhausted their retry
        budget: ``True`` (the default) raises a
        :class:`CampaignExecutionError` carrying every :class:`TaskFailed`;
        ``False`` returns *partial* RunSets — the failed tasks' records are
        simply absent, and the failures ride along as
        :attr:`CampaignResult.failures` so callers can tell a short series
        from a complete one.
        """
        records: Dict[Tuple[int, int, int], RunRecord] = {}
        failures: List[TaskFailed] = []
        hits = 0
        misses = 0
        retries = 0
        elapsed = 0.0
        for event in self.execute():
            if on_event is not None:
                on_event(event)
            if isinstance(event, TaskCompleted):
                task = event.task
                records[(task.entry_index, task.engine_index, task.point_index)] = (
                    event.record
                )
                if event.from_cache:
                    hits += 1
                else:
                    misses += 1
            elif isinstance(event, TaskFailed):
                failures.append(event)
            elif isinstance(event, TaskRetried):
                retries += 1
            else:
                elapsed = max(elapsed, event.elapsed_seconds)
        if failures and strict:
            raise CampaignExecutionError(failures)
        runsets = []
        for entry_index, entry in enumerate(self.campaign.entries):
            ordered = tuple(
                records[(entry_index, engine_index, point_index)]
                for engine_index in range(len(self._engines[entry_index]))
                for point_index in range(len(entry.scenario.offered_traffic))
                if (entry_index, engine_index, point_index) in records
            )
            runsets.append(RunSet(scenario=entry.scenario, records=ordered))
        return CampaignResult(
            campaign=self.campaign,
            labels=self._labels,
            runsets=tuple(runsets),
            cache_hits=hits,
            cache_misses=misses,
            elapsed_seconds=elapsed,
            failures=tuple(failures),
            task_retries=retries,
        )


def run_campaign(
    campaign: Campaign,
    *,
    parallel: bool = False,
    max_workers: Optional[int] = None,
    store: Union[ResultStore, None, str] = "default",
    retry: Optional[RetryPolicy] = None,
    backend: Optional[WorkerBackend] = None,
    strict: bool = True,
    on_event: Optional[Callable[[CampaignEvent], None]] = None,
) -> CampaignResult:
    """Execute ``campaign`` and block for the full :class:`CampaignResult`."""
    executor = CampaignExecutor(
        campaign,
        parallel=parallel,
        max_workers=max_workers,
        store=store,
        retry=retry,
        backend=backend,
    )
    return executor.collect(strict=strict, on_event=on_event)
