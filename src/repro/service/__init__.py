"""The campaign service: warm workers, an async front-end, and a cluster.

Three layers, separable on purpose:

* :mod:`repro.service.daemon` — :class:`WorkerDaemon`, a process pool that
  survives across campaigns, with compiled route tables and topology
  metadata exported once into shared memory so workers map instead of
  rebuild, and :class:`PersistentPoolBackend`, the
  :class:`~repro.campaign.WorkerBackend` adapter that lets any
  :class:`~repro.campaign.CampaignExecutor` run on it unchanged.
* :mod:`repro.service.server` — :class:`CampaignServer`, a stdlib-asyncio
  HTTP front-end (CLI: ``repro serve``) that accepts campaign plans as
  JSON, multiplexes concurrent clients onto one shared daemon, and streams
  the executor's events back as server-sent events; warm requests are
  answered straight from the result store without touching a worker.
* :mod:`repro.service.cluster` — distributed campaigns: a coordinator
  (:class:`ClusterBackend`, another ``WorkerBackend`` adapter) shards one
  plan's task queue over remote :class:`RunnerServer` processes (CLI:
  ``repro runner``) speaking length-prefixed JSON over plain TCP, with
  results merging back through the content-addressed store and lost
  runners recovered by the ordinary retry machinery.
"""

from repro.service.cluster import (
    ClusterBackend,
    LocalRunnerFleet,
    RunnerClient,
    RunnerLost,
    RunnerServer,
    parse_runner_spec,
)
from repro.service.daemon import PersistentPoolBackend, WorkerDaemon
from repro.service.server import CampaignServer, serve

__all__ = [
    "CampaignServer",
    "ClusterBackend",
    "LocalRunnerFleet",
    "PersistentPoolBackend",
    "RunnerClient",
    "RunnerLost",
    "RunnerServer",
    "WorkerDaemon",
    "parse_runner_spec",
    "serve",
]
