"""The campaign service: a warm worker daemon plus an async serving front-end.

Two layers, separable on purpose:

* :mod:`repro.service.daemon` — :class:`WorkerDaemon`, a process pool that
  survives across campaigns, with compiled route tables and topology
  metadata exported once into shared memory so workers map instead of
  rebuild, and :class:`PersistentPoolBackend`, the
  :class:`~repro.campaign.WorkerBackend` adapter that lets any
  :class:`~repro.campaign.CampaignExecutor` run on it unchanged.
* :mod:`repro.service.server` — :class:`CampaignServer`, a stdlib-asyncio
  HTTP front-end (CLI: ``repro serve``) that accepts campaign plans as
  JSON, multiplexes concurrent clients onto one shared daemon, and streams
  the executor's events back as server-sent events; warm requests are
  answered straight from the result store without touching a worker.
"""

from repro.service.daemon import PersistentPoolBackend, WorkerDaemon
from repro.service.server import CampaignServer, serve

__all__ = [
    "CampaignServer",
    "PersistentPoolBackend",
    "WorkerDaemon",
    "serve",
]
