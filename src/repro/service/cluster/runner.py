"""The remote runner: one campaign executor behind a TCP socket.

A runner is today's evaluation machinery wrapped in the cluster protocol —
nothing about evaluation changes by being remote.  Two execution modes:

``inline`` (the default)
    Chunks evaluate in the runner process itself, one at a time.  One
    inline runner is exactly one warm worker; ``repro campaign run
    --runners N`` spawns N of them and the coordinator's shard queue is the
    pool.  Warm engine state (compiled topology, route tables, pooled RNG
    snapshots) persists across chunks and campaigns in the runner's
    engine cache, so re-runs skip compilation just like daemon workers.

``pool`` (``repro runner --workers N``)
    Chunks are forwarded to a local :class:`~repro.service.daemon.WorkerDaemon`
    warm pool — one runner machine contributing N worker processes, with
    the daemon's shared-memory table exports and broken-pool restart.

Fault injection (``REPRO_CAMPAIGN_FAULT``) runs in the evaluating process
exactly as for local pools.  In inline mode an injected ``crash`` takes the
whole runner down — which is the point: a dying runner is indistinguishable
from a dying machine, and the coordinator's retry machinery must converge
anyway.

Bit-identity guard: every ``run`` request carries the coordinator's kernel
switches, and the runner *refuses* mismatches instead of evaluating under
different kernel settings — a record computed under the wrong switches
would be filed under a content address that lies about its provenance.
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
from typing import Any, Dict, List, Optional, Tuple

from repro.api import Engine, Scenario, resolve_engines
from repro.campaign import _maybe_inject_fault
from repro.store import kernel_switches
from repro.utils.serialization import to_jsonable
from repro.utils.validation import ValidationError

from repro.service.cluster.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    recv_frame,
    send_frame,
)

#: Engine cache bound, mirroring the daemon worker cache: cleared wholesale
#: when it outgrows the limit.
_ENGINE_CACHE_LIMIT = 32

#: Inline evaluation is serialised *process-wide*, not per server: the
#: simulator's per-(seed, node) random-stream pool is a module-level cache,
#: so two co-hosted inline runners (embedded fleets, tests) evaluating
#: concurrently would interleave draws on shared PCG64 streams and break
#: bit-identity.  Real deployments run one runner per process and never
#: contend here.
_INLINE_EVALUATE_LOCK = threading.Lock()


class RunnerServer:
    """Serve campaign task chunks over length-prefixed JSON frames.

    Thread-per-connection (:class:`socketserver.ThreadingTCPServer`), so a
    coordinator's ``ping`` is answered even while a chunk evaluates.
    Evaluation itself is serialised through a lock in inline mode — one
    inline runner is one worker, and two interleaved simulations would just
    thrash its caches — while pool mode fans chunks into the daemon.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        workers: int = 0,
    ) -> None:
        self.mode = "pool" if workers > 0 else "inline"
        self._daemon = None
        if workers > 0:
            from repro.service.daemon import WorkerDaemon

            self._daemon = WorkerDaemon(max_workers=workers)
        self._evaluate_lock = threading.Lock()
        self._engines: Dict[Tuple[str, str], Tuple[Engine, Scenario]] = {}
        self.tasks_evaluated = 0
        self.chunks_evaluated = 0

        runner = self

        class _Handler(socketserver.BaseRequestHandler):
            def handle(self) -> None:  # noqa: D102 - socketserver plumbing
                runner._serve_connection(self.request)

        class _Server(socketserver.ThreadingTCPServer):
            allow_reuse_address = True
            daemon_threads = True

        self._server = _Server((host, port), _Handler)
        self.host, self.port = self._server.server_address[:2]
        self._thread: Optional[threading.Thread] = None
        self._shutdown_requested = threading.Event()

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    # ----------------------------------------------------------------- serving
    def start(self) -> "RunnerServer":
        """Serve in a background thread (tests and embedded fleets)."""
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.05},
            daemon=True,
            name=f"repro-runner-{self.port}",
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until ``shutdown`` arrives (the CLI)."""
        try:
            self._server.serve_forever(poll_interval=0.05)
        finally:
            self.close()

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if self._daemon is not None:
            self._daemon.shutdown()
            self._daemon = None

    def __enter__(self) -> "RunnerServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -------------------------------------------------------------- connection
    def _serve_connection(self, sock: socket.socket) -> None:
        """One request/response loop per connection, until EOF or shutdown."""
        try:
            while True:
                try:
                    request = recv_frame(sock)
                except ConnectionError:
                    return  # coordinator hung up between requests
                except ProtocolError as error:
                    # Undecodable framing: answer once, then drop the
                    # connection — the stream offset is unrecoverable.
                    send_frame(sock, {"ok": False, "error": str(error)})
                    return
                response = self._dispatch(request)
                send_frame(sock, response)
                if request.get("op") == "shutdown":
                    # Response flushed first so the coordinator's shutdown
                    # round-trip completes; stop serving from a helper
                    # thread because shutdown() joins the serve loop.
                    self._shutdown_requested.set()
                    threading.Thread(target=self._server.shutdown).start()
                    return
        except OSError:
            return  # connection reset mid-frame: nothing left to answer

    def _dispatch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        op = request.get("op")
        try:
            if op == "ping":
                return self._op_ping()
            if op == "run":
                return self._op_run(request)
            if op == "shutdown":
                return {"ok": True}
            return {"ok": False, "error": f"unknown op {op!r}"}
        except Exception as error:  # noqa: BLE001 - marshalled to coordinator
            return {"ok": False, "error": repr(error)}

    def _op_ping(self) -> Dict[str, Any]:
        return {
            "ok": True,
            "protocol": PROTOCOL_VERSION,
            "mode": self.mode,
            # Chunk-concurrency hint for the coordinator: an inline runner
            # is one worker; a pool runner can absorb one chunk per worker.
            "workers": self._daemon.max_workers if self._daemon is not None else 1,
            "switches": kernel_switches(),
            "tasks_evaluated": self.tasks_evaluated,
        }

    def _op_run(self, request: Dict[str, Any]) -> Dict[str, Any]:
        protocol = request.get("protocol")
        if protocol != PROTOCOL_VERSION:
            return {
                "ok": False,
                "error": f"protocol mismatch: runner speaks {PROTOCOL_VERSION}, "
                f"request is {protocol!r}",
            }
        ours = kernel_switches()
        theirs = request.get("switches")
        if theirs != ours:
            # Refusing is what protects content addresses: the coordinator
            # hashed *its* switches into each task key, so evaluating under
            # different ones would file a lying record.
            return {
                "ok": False,
                "error": f"kernel switches mismatch: runner has {ours}, "
                f"coordinator sent {theirs}",
            }
        try:
            (engine, scenario) = self._resolve(
                str(request["engine"]), request["scenario"]
            )
            items: List[Tuple[float, str]] = [
                (float.fromhex(task["lambda_hex"]), str(task["task_id"]))
                for task in request["tasks"]
            ]
        except (KeyError, TypeError, ValueError, ValidationError) as error:
            return {"ok": False, "error": f"malformed run request: {error!r}"}
        outcomes = self._evaluate_chunk(engine, scenario, items)
        wire_outcomes = [
            [status, to_jsonable(payload) if status == "ok" else payload]
            for status, payload in outcomes
        ]
        self.chunks_evaluated += 1
        self.tasks_evaluated += len(items)
        return {"ok": True, "outcomes": wire_outcomes}

    # -------------------------------------------------------------- evaluation
    def _resolve(
        self, engine_name: str, scenario_dict: Dict[str, Any]
    ) -> Tuple[Engine, Scenario]:
        """Warm (engine, scenario) pair for a request, cached like daemon workers.

        Evaluation reuses the *cached* scenario object because engine
        memoisation is identity-based — a freshly parsed (but equal)
        scenario would rebuild the simulator it came to reuse.
        """
        cache_key = (engine_name, json.dumps(scenario_dict, sort_keys=True))
        with self._evaluate_lock:
            cached = self._engines.get(cache_key)
            if cached is not None:
                return cached
            scenario = Scenario.from_dict(scenario_dict)
            (engine,) = resolve_engines((engine_name,))
            if len(self._engines) >= _ENGINE_CACHE_LIMIT:
                self._engines.clear()
            self._engines[cache_key] = (engine, scenario)
            return engine, scenario

    def _evaluate_chunk(
        self,
        engine: Engine,
        scenario: Scenario,
        items: List[Tuple[float, str]],
    ) -> List[Tuple[str, Any]]:
        from repro.api import _evaluate_point

        if self._daemon is not None:
            future = self._daemon.submit_chunk(
                engine, scenario, items, None, named_engine=True
            )
            return future.result()
        outcomes: List[Tuple[str, Any]] = []
        with _INLINE_EVALUATE_LOCK:
            for lambda_g, task_id in items:
                _maybe_inject_fault(task_id)
                try:
                    record = _evaluate_point(engine, scenario, lambda_g)
                except Exception as error:  # noqa: BLE001 - contained per task
                    outcomes.append(("error", repr(error)))
                else:
                    outcomes.append(("ok", record))
        return outcomes


def parse_listen_spec(spec: str) -> Tuple[str, int]:
    """``host:port`` / ``:port`` / bare ``port`` -> (host, port)."""
    text = spec.strip()
    host, sep, port_text = text.rpartition(":")
    if not sep:
        host, port_text = "", text
    try:
        port = int(port_text)
    except ValueError:
        raise ValidationError(f"invalid listen spec {spec!r}: bad port {port_text!r}")
    if not 0 <= port <= 65535:
        raise ValidationError(f"invalid listen spec {spec!r}: port out of range")
    return host or "127.0.0.1", port


def run_runner(
    listen: str = "127.0.0.1:0",
    *,
    workers: int = 0,
    announce: bool = True,
) -> None:
    """``repro runner`` entry point: serve until a ``shutdown`` op arrives.

    ``announce`` prints one parseable ``runner listening on HOST:PORT``
    line — with ``--listen :0`` that is how fleets and scripts learn the
    kernel-assigned port.
    """
    host, port = parse_listen_spec(listen)
    server = RunnerServer(host, port, workers=workers)
    if announce:
        print(f"runner listening on {server.address} ({server.mode})", flush=True)
    server.serve_forever()
