"""Wire protocol for distributed campaigns: length-prefixed JSON frames.

One frame is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON.  Requests and responses are plain dicts with an
``"op"`` / ``"ok"`` discriminator — no pickle crosses the wire, so a
runner never executes coordinator bytes and either side can be
implemented by anything that speaks sockets and JSON.

Bit-identity across the wire rests on two choices here:

* Operating points travel as ``float.hex()`` strings (``lambda_hex``),
  not decimal floats, so the runner reconstructs the exact double the
  coordinator hashed into the task's content address.
* The coordinator sends its :func:`repro.store.kernel_switches` with
  every ``run`` request and the runner *rejects* mismatches instead of
  silently evaluating under different kernel settings — a record
  computed under the wrong switches would be filed under a content
  address that lies about its provenance.

Ops
---
``ping``      → ``{"ok": true, "protocol": N, "mode": ..., "switches": {...}}``
``run``       → evaluate a chunk of tasks; per-task outcomes, never a
                frame-level failure for an ordinary evaluation error.
``shutdown``  → acknowledge, then stop serving (used by auto-spawned fleets).
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Dict

PROTOCOL_VERSION = 1

# A frame carries at most a chunk of task descriptions or records —
# megabytes at the extreme, never gigabytes.  The cap turns a corrupt or
# hostile length prefix into a clean ProtocolError instead of an
# attempted multi-GiB allocation.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class ProtocolError(RuntimeError):
    """A malformed, oversized, or truncated frame."""


def send_frame(sock: socket.socket, payload: Dict[str, Any]) -> None:
    """Serialize ``payload`` and write one length-prefixed frame."""
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(body)} bytes exceeds cap {MAX_FRAME_BYTES}")
    sock.sendall(_LENGTH.pack(len(body)) + body)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionError(f"connection closed with {remaining} of {n} bytes unread")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Dict[str, Any]:
    """Read one frame; raises ConnectionError on EOF, ProtocolError on junk."""
    header = _recv_exact(sock, _LENGTH.size)
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame length {length} exceeds cap {MAX_FRAME_BYTES}")
    body = _recv_exact(sock, length)
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(f"frame payload must be an object, got {type(payload).__name__}")
    return payload


def request(sock: socket.socket, payload: Dict[str, Any]) -> Dict[str, Any]:
    """One round-trip: send a request frame, read the response frame."""
    send_frame(sock, payload)
    return recv_frame(sock)
