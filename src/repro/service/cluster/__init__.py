"""Distributed campaigns: shard one plan across machines over plain sockets.

The campaign stack runs one plan on one machine; this package is the first
step to a fleet.  Three layers, one per module:

* :mod:`repro.service.cluster.protocol` — the wire format: length-prefixed
  JSON frames over plain TCP, with every task content (scenario JSON, engine
  registry name, ``float.hex`` operating points, kernel switches) spelled
  out explicitly so a runner evaluates *exactly* the task the coordinator's
  content address names.
* :mod:`repro.service.cluster.runner` — :class:`RunnerServer` (CLI:
  ``repro runner --listen host:port``): one remote executor.  Each runner is
  just today's evaluation machinery — the engine registry plus an optional
  warm :class:`~repro.service.daemon.WorkerDaemon` pool — wrapped in the
  socket protocol; ``--inline`` mode evaluates in the runner process itself,
  so N auto-spawned inline runners *are* an N-process pool.
* :mod:`repro.service.cluster.coordinator` — :class:`ClusterBackend`, the
  :class:`~repro.campaign.WorkerBackend` adapter that shards a campaign's
  flattened task queue over any number of runners, plus
  :class:`LocalRunnerFleet`, which auto-spawns loopback runner subprocesses
  for ``repro campaign run --runners N``.

Results flow back as content-addressed store records (the coordinator's
executor ``put``\\ s them under the same task keys a local run would use), so
merging distributed results is trivial and warm re-runs dedupe through the
store exactly as today.  A lost runner is treated like a broken worker pool:
its in-flight tasks are charged one attempt and re-queued onto the surviving
runners through the ordinary :class:`~repro.campaign.RetryPolicy`, streaming
the same :class:`~repro.campaign.TaskRetried` / :class:`~repro.campaign.TaskFailed`
events.
"""

from repro.service.cluster.coordinator import (
    ClusterBackend,
    LocalRunnerFleet,
    RunnerClient,
    RunnerLost,
    parse_runner_spec,
)
from repro.service.cluster.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    recv_frame,
    send_frame,
)
from repro.service.cluster.runner import RunnerServer, run_runner

__all__ = [
    "ClusterBackend",
    "LocalRunnerFleet",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RunnerClient",
    "RunnerLost",
    "RunnerServer",
    "parse_runner_spec",
    "recv_frame",
    "run_runner",
    "send_frame",
]
