"""The coordinator side: shard a campaign's task queue over remote runners.

:class:`ClusterBackend` is a :class:`~repro.campaign.WorkerBackend`, so the
executor that drives a local process pool drives a fleet unchanged — the
flattened task queue, the store-first cache pass, chunked submission and the
whole :class:`~repro.campaign.RetryPolicy` machinery all apply as-is.  Each
live runner gets dispatcher threads that pull chunks off one shared round
queue (work-stealing between unequal machines for free) and block on the
socket round-trip; results come back as JSON records, are rebuilt into
:class:`~repro.api.RunRecord` and flow through the executor's ordinary
``_persist`` path — i.e. straight into the coordinator's content-addressed
store under the very keys a local run would use.

Failure model: a socket-level loss (:class:`RunnerLost`) marks the runner
dead for the rest of the campaign and fails the in-flight chunk, which the
executor books as one charged attempt per task (``TaskRetried`` while the
policy has attempts left, ``TaskFailed`` after).  The re-queued tasks land
on the surviving runners in the next round, because ``begin_round`` pings
the fleet and only live runners get dispatchers.  A runner *reply* of
``ok=false`` (unknown engine, kernel-switch mismatch) raises
:class:`RunnerError` instead: same per-task charging, but the runner stays
in the fleet.
"""

from __future__ import annotations

import os
import queue
import socket
import subprocess
import sys
import threading
import time
from concurrent.futures import Future
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.api import Engine, RunRecord, Scenario
from repro.campaign import ChunkOutcome, WorkerBackend
from repro.store import kernel_switches
from repro.utils.serialization import from_jsonable
from repro.utils.validation import ValidationError

from repro.service.cluster.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    recv_frame,
    send_frame,
)

#: Dispatcher threads per runner are capped so a huge pool-mode runner
#: cannot starve the coordinator of threads.
_MAX_DISPATCHERS_PER_RUNNER = 8


class RunnerLost(RuntimeError):
    """The socket to a runner died — treat the machine as gone."""


class RunnerError(RuntimeError):
    """A live runner refused or failed a request (it keeps serving)."""


def parse_runner_spec(spec: str) -> Union[int, List[str]]:
    """Parse ``--runners``: ``"3"`` -> 3 auto-spawned localhost runners,
    ``"host1:port1,host2:port2"`` -> explicit addresses."""
    text = spec.strip()
    if not text:
        raise ValidationError("--runners must name addresses or a count")
    if text.isdigit():
        count = int(text)
        if count < 1:
            raise ValidationError("--runners count must be >= 1")
        return count
    addresses = []
    for part in text.split(","):
        part = part.strip()
        host, sep, port_text = part.rpartition(":")
        if not sep or not host:
            raise ValidationError(
                f"invalid runner address {part!r} (expected host:port)"
            )
        try:
            port = int(port_text)
        except ValueError:
            raise ValidationError(f"invalid runner address {part!r}: bad port")
        if not 1 <= port <= 65535:
            raise ValidationError(f"invalid runner address {part!r}: port out of range")
        addresses.append(f"{host}:{port}")
    return addresses


def _split_address(address: str) -> Tuple[str, int]:
    host, _, port_text = address.rpartition(":")
    return host, int(port_text)


class RunnerClient:
    """One persistent connection to one runner, with RunnerLost semantics.

    Not thread-safe by itself — each dispatcher thread owns a private
    client, so concurrent chunks to one runner ride parallel connections
    (the runner is thread-per-connection anyway).
    """

    def __init__(self, address: str, *, connect_timeout: float = 10.0) -> None:
        self.address = address
        self.connect_timeout = connect_timeout
        self._sock: Optional[socket.socket] = None
        self._lock = threading.Lock()

    def _connect(self) -> socket.socket:
        host, port = _split_address(self.address)
        sock = socket.create_connection((host, port), timeout=self.connect_timeout)
        # Requests block indefinitely once connected: a long simulation is
        # not a dead runner.  Reclaiming a genuinely hung runner is the
        # retry policy's task timeout (kill_workers aborts the socket).
        sock.settimeout(None)
        return sock

    def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """One round-trip; socket-level failure closes and raises RunnerLost."""
        try:
            with self._lock:
                if self._sock is None:
                    self._sock = self._connect()
                sock = self._sock
            send_frame(sock, payload)
            return recv_frame(sock)
        except (ConnectionError, ProtocolError, OSError) as error:
            self.close()
            raise RunnerLost(f"runner {self.address} lost: {error}") from error

    def ping(self, *, timeout: Optional[float] = None) -> Dict[str, Any]:
        """Ping with an optional response deadline (liveness, not work)."""
        try:
            with self._lock:
                if self._sock is None:
                    self._sock = self._connect()
                sock = self._sock
            if timeout is not None:
                sock.settimeout(timeout)
            try:
                send_frame(sock, {"op": "ping"})
                response = recv_frame(sock)
            finally:
                if timeout is not None and self._sock is not None:
                    sock.settimeout(None)
        except (ConnectionError, ProtocolError, OSError) as error:
            self.close()
            raise RunnerLost(f"runner {self.address} lost: {error}") from error
        if not response.get("ok"):
            raise RunnerError(
                f"runner {self.address} ping failed: {response.get('error')}"
            )
        return response

    def run_chunk(self, payload: Dict[str, Any]) -> List[ChunkOutcome]:
        """Send one ``run`` request; rebuild records from the reply."""
        response = self.request(payload)
        if not response.get("ok"):
            raise RunnerError(
                f"runner {self.address} rejected chunk: {response.get('error')}"
            )
        outcomes: List[ChunkOutcome] = []
        try:
            for status, body in response["outcomes"]:
                if status == "ok":
                    outcomes.append(("ok", from_jsonable(RunRecord, body)))
                else:
                    outcomes.append(("error", str(body)))
        except (KeyError, TypeError, ValueError) as error:
            raise RunnerError(
                f"runner {self.address} returned a malformed outcome: {error!r}"
            ) from error
        return outcomes

    def shutdown(self) -> None:
        """Best-effort remote shutdown (fleet teardown)."""
        try:
            self.request({"op": "shutdown"})
        except (RunnerLost, RunnerError):
            pass
        self.close()

    def abort(self) -> None:
        """Abort an in-flight request from another thread (timeout reclaim)."""
        with self._lock:
            sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass

    def close(self) -> None:
        with self._lock:
            sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass


class _Dispatcher:
    """One worker slot on one runner: a thread plus its private client."""

    def __init__(self, backend: "ClusterBackend", address: str) -> None:
        self.backend = backend
        self.address = address
        self.client = RunnerClient(
            address, connect_timeout=backend.connect_timeout
        )
        self.thread = threading.Thread(
            target=self._loop, daemon=True, name=f"repro-dispatch-{address}"
        )

    def _loop(self) -> None:
        backend = self.backend
        work = backend._work
        assert work is not None
        try:
            while True:
                item = work.get()
                if item is None:
                    return
                future, payload = item
                if not future.set_running_or_notify_cancel():
                    continue
                try:
                    outcomes = self.client.run_chunk(payload)
                except RunnerLost as error:
                    future.set_exception(error)
                    backend._mark_dead(self.address)
                    return  # this runner is gone; surviving dispatchers drain
                except Exception as error:  # noqa: BLE001 - charged per task
                    future.set_exception(error)
                else:
                    future.set_result(outcomes)
        finally:
            backend._dispatcher_exited()
            self.client.close()


class ClusterBackend(WorkerBackend):
    """Run a campaign's pooled tasks on a fleet of socket runners.

    Distributed campaigns require registry-named engines: an engine crosses
    the wire as its registry name plus the scenario JSON, never as pickled
    code.  (In practice every campaign built from strings — the CLI, the
    server, ``api.run`` — qualifies; only programmatic custom ``Engine``
    objects do not, and those fail with a structured per-task error.)

    ``workers`` for the executor's accounting is the fleet's total worker
    count (inline runners count 1 each, pool runners their pool size), and
    chunk concurrency matches it: that many dispatcher threads, each
    blocking on one in-flight chunk.
    """

    persistent = True

    def __init__(
        self,
        runners: Sequence[str],
        *,
        fleet: Optional["LocalRunnerFleet"] = None,
        connect_timeout: float = 10.0,
    ) -> None:
        if not runners:
            raise ValidationError("ClusterBackend needs at least one runner address")
        self.addresses: Tuple[str, ...] = tuple(dict.fromkeys(runners))
        self.connect_timeout = connect_timeout
        self._fleet = fleet
        self._dead: set = set()
        self._dead_lock = threading.Lock()
        self._work: Optional["queue.Queue"] = None
        self._dispatchers: List[_Dispatcher] = []
        self._live_dispatchers = 0
        self._round_switches: Dict[str, str] = {}

    # ---------------------------------------------------------------- liveness
    def _mark_dead(self, address: str) -> None:
        with self._dead_lock:
            self._dead.add(address)

    def dead_runners(self) -> Tuple[str, ...]:
        with self._dead_lock:
            return tuple(sorted(self._dead))

    def _dispatcher_exited(self) -> None:
        """Last dispatcher out fails whatever is still queued — nothing else
        will ever pop it, and a future nobody resolves hangs the campaign."""
        with self._dead_lock:
            self._live_dispatchers -= 1
            last = self._live_dispatchers <= 0
        work = self._work
        if not last or work is None:
            return
        while True:
            try:
                item = work.get_nowait()
            except queue.Empty:
                return
            if item is None:
                continue
            future, _ = item
            if future.set_running_or_notify_cancel():
                future.set_exception(
                    RunnerLost("every runner was lost with chunks still queued")
                )

    # ------------------------------------------------------------------ rounds
    def prepare_entry(self, engine: Engine, scenario: Scenario) -> None:
        """Runners compile their own tables; nothing to warm coordinator-side."""

    def begin_round(self, workers: int) -> int:
        with self._dead_lock:
            candidates = [a for a in self.addresses if a not in self._dead]
        live: List[Tuple[str, int]] = []
        for address in candidates:
            client = RunnerClient(address, connect_timeout=self.connect_timeout)
            try:
                info = client.ping(timeout=self.connect_timeout)
            except RunnerLost:
                self._mark_dead(address)
                continue
            except RunnerError:
                self._mark_dead(address)
                continue
            finally:
                client.close()
            slots = max(1, int(info.get("workers", 1)))
            live.append((address, min(slots, _MAX_DISPATCHERS_PER_RUNNER)))
        if not live:
            raise RunnerLost(
                f"no live runners among {', '.join(self.addresses)} "
                f"(dead: {', '.join(self.dead_runners()) or 'none'})"
            )
        self._round_switches = kernel_switches()
        self._work = queue.Queue()
        self._dispatchers = [
            _Dispatcher(self, address)
            for address, slots in live
            for _ in range(slots)
        ]
        with self._dead_lock:
            self._live_dispatchers = len(self._dispatchers)
        for dispatcher in self._dispatchers:
            dispatcher.thread.start()
        return sum(slots for _, slots in live)

    def submit_chunk(
        self,
        engine: Engine,
        scenario: Scenario,
        items: Sequence[Tuple[float, str]],
        registry_dir: Optional[str],
        *,
        named_engine: bool,
    ) -> Future:
        future: Future = Future()
        payload = {
            "op": "run",
            "protocol": PROTOCOL_VERSION,
            "engine": engine.name,
            "scenario": scenario.to_dict(),
            "tasks": [
                {"lambda_hex": float(lambda_g).hex(), "task_id": task_id}
                for lambda_g, task_id in items
            ],
            "switches": self._round_switches,
        }
        assert self._work is not None, "submit_chunk outside a round"
        self._work.put((future, payload))
        return future

    def kill_workers(self) -> None:
        """Timeout reclaim: abort every in-flight socket.

        The runners whose requests we abandon are marked dead by their
        dispatchers — mid-request abandonment leaves a runner in an unknown
        state (an inline runner may still be grinding the hung task), and a
        machine we cannot trust to be idle is a machine we stop scheduling.
        """
        for dispatcher in self._dispatchers:
            dispatcher.client.abort()

    def end_round(self, *, broken: bool) -> None:
        if self._work is not None:
            for _ in self._dispatchers:
                self._work.put(None)
        for dispatcher in self._dispatchers:
            dispatcher.thread.join(timeout=30.0)
        self._dispatchers = []
        self._work = None

    def close(self) -> None:
        if self._fleet is not None:
            self._fleet.close()
            self._fleet = None


class LocalRunnerFleet:
    """Auto-spawned loopback runner subprocesses (``--runners N``).

    Each subprocess is ``python -m repro runner --listen 127.0.0.1:0``; the
    kernel-assigned port is parsed from the runner's announce line.  The
    fleet inherits this process's environment, so kernel switches (and the
    fault-injection hook in tests) propagate to every runner.
    """

    def __init__(
        self,
        count: int,
        *,
        workers_per_runner: int = 0,
        spawn_timeout: float = 30.0,
    ) -> None:
        if count < 1:
            raise ValidationError("a runner fleet needs at least one runner")
        self.processes: List[subprocess.Popen] = []
        self.addresses: List[str] = []
        import repro

        env = dict(os.environ)
        package_root = str(Path(repro.__file__).resolve().parents[1])
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (package_root, env.get("PYTHONPATH")) if p
        )
        command = [sys.executable, "-m", "repro", "runner", "--listen", "127.0.0.1:0"]
        if workers_per_runner > 0:
            command += ["--workers", str(workers_per_runner)]
        try:
            for _ in range(count):
                process = subprocess.Popen(
                    command,
                    stdout=subprocess.PIPE,
                    stderr=subprocess.DEVNULL,
                    env=env,
                    text=True,
                )
                self.processes.append(process)
            for process in self.processes:
                self.addresses.append(self._read_announce(process, spawn_timeout))
        except Exception:
            self.close()
            raise

    @staticmethod
    def _read_announce(process: subprocess.Popen, timeout: float) -> str:
        deadline = time.monotonic() + timeout
        assert process.stdout is not None
        line = ""
        while time.monotonic() < deadline:
            if process.poll() is not None:
                raise RunnerLost(
                    f"runner subprocess exited with {process.returncode} before "
                    "announcing its port"
                )
            line = process.stdout.readline()
            if line:
                break
        if "listening on" not in line:
            raise RunnerLost(f"unexpected runner announce line: {line!r}")
        return line.split("listening on", 1)[1].split()[0]

    def __enter__(self) -> "LocalRunnerFleet":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def close(self) -> None:
        for process, address in zip(self.processes, self.addresses):
            if process.poll() is None:
                RunnerClient(address, connect_timeout=2.0).shutdown()
        for process in self.processes:
            if process.poll() is None:
                try:
                    process.wait(timeout=5.0)
                except subprocess.TimeoutExpired:
                    process.terminate()
                    try:
                        process.wait(timeout=5.0)
                    except subprocess.TimeoutExpired:
                        process.kill()
                        process.wait()
            if process.stdout is not None:
                process.stdout.close()
        self.processes = []
        self.addresses = []
