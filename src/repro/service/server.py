"""Asyncio front-end for the campaign service: plans in, SSE events out.

``repro serve`` binds a :class:`CampaignServer` — a deliberately small
stdlib-only HTTP/1.1 endpoint (no web framework in the dependency set) that
multiplexes any number of concurrent clients onto one shared
:class:`~repro.service.daemon.WorkerDaemon`:

* ``GET /health`` — JSON snapshot: worker pids, tasks dispatched, pool
  restarts, owned shared-memory segments, campaigns served.
* ``POST /campaigns`` — body is a campaign plan exactly as
  :meth:`repro.campaign.Campaign.from_dict` accepts it (the ``repro
  campaign run`` plan-file format).  The response is a
  ``text/event-stream``: one server-sent event per streamed
  :class:`~repro.campaign.CampaignEvent` (``progress`` / ``completed`` /
  ``retried`` / ``failed``, each ``data:`` line the JSON form of the event)
  followed by a terminal ``result`` event carrying every entry's run set
  plus execution stats — the same payload shape ``repro campaign run
  --json`` writes.

Each campaign runs its ordinary :class:`~repro.campaign.CampaignExecutor`
in a worker thread with a :class:`~repro.service.daemon.PersistentPoolBackend`;
the event loop only parses requests and forwards events, so slow clients
never stall the simulation.  Warm requests — every task already in the
result store — are served entirely from the executor's cache-hits-first
path and never touch a daemon worker.

The server intentionally applies no per-task timeout by default: a timeout
kill terminates the *shared* daemon's workers, collateral included (see
:mod:`repro.service.daemon`); pass an explicit :class:`RetryPolicy` to opt
in anyway.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
from typing import Any, Dict, Optional, Tuple, Union

from repro import __version__
from repro.campaign import (
    Campaign,
    CampaignEvent,
    CampaignExecutor,
    CampaignProgress,
    CampaignResult,
    RetryPolicy,
    TaskCompleted,
    TaskFailed,
    TaskRetried,
)
from repro.service.daemon import PersistentPoolBackend, WorkerDaemon
from repro.store import ResultStore
from repro.utils.serialization import to_jsonable
from repro.utils.validation import ValidationError

__all__ = ["CampaignServer", "event_name", "event_payload", "serve"]

#: Queue sentinel: the executor thread is done (result or exception follows).
_DONE = object()

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found", 500: "Internal Server Error"}

_EVENT_NAMES = (
    (TaskCompleted, "completed"),
    (TaskRetried, "retried"),
    (TaskFailed, "failed"),
    (CampaignProgress, "progress"),
)


def event_name(event: CampaignEvent) -> str:
    """The SSE ``event:`` field for one streamed campaign event."""
    for kind, name in _EVENT_NAMES:
        if isinstance(event, kind):
            return name
    return "event"  # pragma: no cover - exhaustive over CampaignEvent


def event_payload(event: CampaignEvent) -> Dict[str, Any]:
    """The SSE ``data:`` JSON for one streamed campaign event."""
    payload = to_jsonable(event)
    task = getattr(event, "task", None)
    if task is not None:
        payload["task"]["task_id"] = task.task_id
    return payload


class CampaignServer:
    """The asyncio HTTP/SSE front-end over one shared worker daemon.

    Parameters mirror :class:`~repro.campaign.CampaignExecutor` where they
    overlap: ``store`` is resolved once and shared by every campaign (one
    cached SQLite connection per serving thread, not one per request), and
    ``retry`` applies to every served campaign (default: no retries, no
    timeout).  ``port=0`` binds an ephemeral port, published as
    :attr:`port` after :meth:`start`.
    """

    def __init__(
        self,
        daemon: Optional[WorkerDaemon] = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        store: Union[ResultStore, None, str] = "default",
        retry: Optional[RetryPolicy] = None,
        max_workers: Optional[int] = None,
    ) -> None:
        self.daemon = daemon if daemon is not None else WorkerDaemon(max_workers)
        self.host = host
        self.port = port
        if store == "default":
            self.store: Optional[ResultStore] = ResultStore()
        elif store is None or isinstance(store, ResultStore):
            self.store = store
        else:
            raise ValidationError(
                "store must be a ResultStore, None, or the string 'default'"
            )
        self.retry = retry
        self._server: Optional[asyncio.AbstractServer] = None
        self._lock = threading.Lock()
        self.campaigns_served = 0
        self.active_campaigns = 0

    # -------------------------------------------------------------- lifecycle
    async def start(self) -> "CampaignServer":
        """Bind and start accepting clients (idempotent)."""
        if self._server is None:
            self._server = await asyncio.start_server(
                self._handle_client, self.host, self.port
            )
            self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def stop(self) -> None:
        """Stop accepting clients (the daemon's lifecycle stays the owner's)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------- HTTP layer
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, path, body = request
            if method == "GET" and path == "/health":
                await self._send_json(writer, 200, self.health())
            elif method == "POST" and path == "/campaigns":
                await self._serve_campaign(writer, body)
            else:
                await self._send_json(
                    writer,
                    404,
                    {"error": f"no route for {method} {path}",
                     "routes": ["GET /health", "POST /campaigns"]},
                )
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange; nothing to answer
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:  # pragma: no cover - already-dead transport
                pass

    @staticmethod
    async def _read_request(
        reader: asyncio.StreamReader,
    ) -> Optional[Tuple[str, str, bytes]]:
        """Parse one HTTP/1.1 request (method, path, body) — or None on EOF."""
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").split()
        if len(parts) < 2:
            return None
        method, target = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        body = await reader.readexactly(length) if length > 0 else b""
        return method, target.split("?", 1)[0], body

    @staticmethod
    async def _send_json(
        writer: asyncio.StreamWriter, status: int, payload: Dict[str, Any]
    ) -> None:
        body = json.dumps(payload, indent=2).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()

    @staticmethod
    async def _send_event(
        writer: asyncio.StreamWriter, name: str, payload: Dict[str, Any]
    ) -> None:
        frame = f"event: {name}\ndata: {json.dumps(payload)}\n\n".encode("utf-8")
        writer.write(frame)
        await writer.drain()

    # ---------------------------------------------------------- the endpoints
    def health(self) -> Dict[str, Any]:
        """The ``GET /health`` body (also handy for in-process checks)."""
        stats = self.daemon.stats()
        stats.update(
            {
                "status": "ok",
                "version": __version__,
                "campaigns_served": self.campaigns_served,
                "active_campaigns": self.active_campaigns,
                "store": str(self.store.root) if self.store is not None else None,
                "store_backend": (
                    self.store.backend.name if self.store is not None else None
                ),
            }
        )
        return stats

    async def _serve_campaign(self, writer: asyncio.StreamWriter, body: bytes) -> None:
        try:
            plan = json.loads(body.decode("utf-8"))
            campaign = Campaign.from_dict(plan)
        except (ValueError, ValidationError) as error:
            await self._send_json(writer, 400, {"error": str(error)})
            return

        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: text/event-stream\r\n"
            "Cache-Control: no-cache\r\n"
            "Connection: close\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head)
        await writer.drain()

        loop = asyncio.get_running_loop()
        queue: asyncio.Queue = asyncio.Queue()

        def emit(event: CampaignEvent) -> None:
            loop.call_soon_threadsafe(queue.put_nowait, event)

        def work() -> CampaignResult:
            executor = CampaignExecutor(
                campaign,
                parallel=True,
                max_workers=self.daemon.max_workers,
                store=self.store,
                retry=self.retry,
                backend=PersistentPoolBackend(self.daemon),
            )
            try:
                # strict=False: exhausted tasks ride in the result payload as
                # structured failures instead of tearing the stream down.
                return executor.collect(strict=False, on_event=emit)
            finally:
                loop.call_soon_threadsafe(queue.put_nowait, _DONE)

        with self._lock:
            self.active_campaigns += 1
        try:
            task = loop.run_in_executor(None, work)
            while True:
                event = await queue.get()
                if event is _DONE:
                    break
                await self._send_event(writer, event_name(event), event_payload(event))
            try:
                result = await task
            except Exception as error:  # noqa: BLE001 - surfaced to the client
                await self._send_event(writer, "error", {"error": repr(error)})
                return
            await self._send_event(
                writer, "result", self._result_payload(campaign, result)
            )
        finally:
            with self._lock:
                self.active_campaigns -= 1
                self.campaigns_served += 1

    def _result_payload(
        self, campaign: Campaign, result: CampaignResult
    ) -> Dict[str, Any]:
        """The terminal ``result`` event: ``repro campaign run --json`` shape."""
        return {
            "name": campaign.name,
            "labels": list(result.labels),
            "runsets": {label: to_jsonable(runset) for label, runset in result},
            "execution": {
                "tasks": result.total_tasks,
                "cache_hits": result.cache_hits,
                "cache_misses": result.cache_misses,
                "elapsed_seconds": result.elapsed_seconds,
                "parallel": True,
                "workers": self.daemon.max_workers,
                "tasks_dispatched": self.daemon.tasks_dispatched,
                "store": str(self.store.root) if self.store is not None else None,
                "store_backend": (
                    self.store.backend.name if self.store is not None else None
                ),
                "task_retries": result.task_retries,
                "failures": [
                    {
                        "task": failure.task.task_id,
                        "lambda_g": failure.task.lambda_g,
                        "attempts": failure.attempts,
                        "error": failure.error,
                    }
                    for failure in result.failures
                ],
            },
        }


async def _serve_async(server: CampaignServer) -> None:
    await server.start()
    print(f"repro campaign service on http://{server.host}:{server.port}")
    print("endpoints: GET /health, POST /campaigns (SSE stream)")
    loop = asyncio.get_running_loop()
    stop: asyncio.Future = loop.create_future()

    def _request_stop(*_args: Any) -> None:
        if not stop.done():
            stop.set_result(None)

    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, _request_stop)
        except (NotImplementedError, RuntimeError):  # pragma: no cover - non-Unix
            signal.signal(signum, lambda *_: _request_stop())
    await stop
    print("shutting down: stopping workers and unlinking shared memory")
    await server.stop()


def serve(
    host: str = "127.0.0.1",
    port: int = 8765,
    *,
    daemon: Optional[WorkerDaemon] = None,
    store: Union[ResultStore, None, str] = "default",
    retry: Optional[RetryPolicy] = None,
    max_workers: Optional[int] = None,
) -> None:
    """Blocking entry point: serve until SIGINT/SIGTERM, then clean up.

    Shutdown order matters: the listener stops first (no new campaigns),
    then the daemon terminates its workers and unlinks every shared-memory
    segment it exported — the guarantee the ``/dev/shm`` leak test pins.
    """
    server = CampaignServer(
        daemon, host=host, port=port, store=store, retry=retry, max_workers=max_workers
    )
    try:
        asyncio.run(_serve_async(server))
    finally:
        server.daemon.shutdown()
