"""The persistent worker-pool daemon behind the campaign service.

The ephemeral executor pays pool spawn plus per-worker warm-up for every
campaign; the recorded scaling curve showed that overhead *exceeding* the
simulation work at two workers.  A :class:`WorkerDaemon` amortises all of it
across a stream of campaigns:

* **one pool, many campaigns** — the :class:`ProcessPoolExecutor` outlives
  any single campaign; a broken pool (crashed worker) is restarted in place
  and campaigns in flight re-queue through their
  :class:`~repro.campaign.RetryPolicy` exactly as they would on an
  ephemeral pool.
* **compiled state in shared memory** — the first campaign touching a tree
  shape compiles its route tables and topology metadata once, in the daemon
  process, and exports them via :mod:`repro.topology.shm` /
  :mod:`repro.routing.shm`; every worker (including workers born *after* a
  restart, which inherit nothing useful) maps the arrays instead of
  rebuilding them.
* **warm worker-side engines** — workers cache one engine instance per
  (engine name, scenario), so the memoised simulator, its warmed stream
  pool and its prepared route tables survive from task to task and from
  campaign to campaign.

:class:`PersistentPoolBackend` adapts one daemon to the
:class:`~repro.campaign.WorkerBackend` protocol, one backend instance per
executor; any number of backends may share a daemon concurrently — that is
precisely how :mod:`repro.service.server` multiplexes clients.

Sharing has one documented caveat: a :class:`~repro.campaign.RetryPolicy`
*timeout kill* terminates the daemon's workers, which also breaks any other
campaign running on it (those campaigns recover through their own retry
rounds).  The serving front-end therefore defaults to no per-task timeout.
"""

from __future__ import annotations

import atexit
import json
import multiprocessing
import os
import threading
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.api import Engine, Scenario, _evaluate_point
from repro.campaign import WorkerBackend, _maybe_inject_fault, _note_worker_task
from repro.routing.shm import (
    export_graph_route_tables,
    export_route_tables,
    install_graph_route_tables,
    install_route_tables,
)
from repro.topology.shm import (
    SharedArena,
    export_graphs,
    export_trees,
    install_graphs,
    install_trees,
)
from repro.utils.validation import ValidationError

__all__ = ["PersistentPoolBackend", "WorkerDaemon"]


# --------------------------------------------------------------------------- #
# Worker-side state (one copy per worker process)
# --------------------------------------------------------------------------- #
#: Arenas attached in this worker, keyed by export-batch token.  Kept
#: referenced for the worker's lifetime: the NumPy views installed into the
#: compile caches alias these segments.
_ATTACHED: Dict[str, Tuple[SharedArena, ...]] = {}

#: (engine name, canonical scenario JSON) -> (engine, scenario) pairs whose
#: memoised simulator state stays warm across tasks and campaigns.  Bounded
#: like the compile caches: cleared wholesale when it outgrows the limit.
_WORKER_ENGINES: Dict[Tuple[str, str], Tuple[Engine, Scenario]] = {}
_WORKER_ENGINE_CACHE_LIMIT = 32


def _attach_batches(batches: Sequence[Dict[str, Any]]) -> None:
    """Map every not-yet-seen export batch into this worker's caches."""
    for batch in batches:
        token = batch["token"]
        if token in _ATTACHED:
            continue
        arenas: List[SharedArena] = []
        if batch.get("trees") is not None:
            arenas.append(install_trees(batch["trees"]))
        if batch.get("routes") is not None:
            arenas.append(install_route_tables(batch["routes"]))
        if batch.get("graphs") is not None:
            arenas.append(install_graphs(batch["graphs"]))
        if batch.get("graph_routes") is not None:
            arenas.append(install_graph_route_tables(batch["graph_routes"]))
        _ATTACHED[token] = tuple(arenas)


def _daemon_evaluate(
    batches: Optional[Sequence[Dict[str, Any]]],
    engine: Engine,
    scenario: Scenario,
    lambda_g: float,
    task_id: str,
    registry_dir: Optional[str],
    cache_key: Optional[Tuple[str, str]],
) -> Any:
    """Daemon worker entry: attach shared state once, reuse warm engines.

    Mirrors :func:`repro.campaign._pool_evaluate` (pid tag first, then the
    fault hook, then evaluation) so the executor's crash/timeout machinery
    observes identical worker behaviour on both backends.
    """
    _note_worker_task(registry_dir, task_id)
    if batches:
        _attach_batches(batches)
    _maybe_inject_fault(task_id)
    if cache_key is not None:
        cached = _WORKER_ENGINES.get(cache_key)
        if cached is None:
            if len(_WORKER_ENGINES) >= _WORKER_ENGINE_CACHE_LIMIT:
                _WORKER_ENGINES.clear()
            _WORKER_ENGINES[cache_key] = (engine, scenario)
        else:
            # Evaluate against the *cached* scenario object: engine
            # memoisation is identity-based, so the freshly unpickled (but
            # equal) scenario would rebuild the simulator it came to reuse.
            engine, scenario = cached
    return _evaluate_point(engine, scenario, lambda_g)


def _daemon_evaluate_chunk(
    batches: Optional[Sequence[Dict[str, Any]]],
    engine: Engine,
    scenario: Scenario,
    items: Sequence[Tuple[float, str]],
    registry_dir: Optional[str],
    cache_key: Optional[Tuple[str, str]],
) -> Any:
    """Daemon worker entry for a chunk of tasks sharing one (engine, scenario).

    The chunked counterpart of :func:`_daemon_evaluate`, with the outcome
    contract of :func:`repro.campaign._pool_evaluate_chunk`: per-task
    ``("ok", record)`` / ``("error", repr)`` tuples, so one task's
    evaluation error never fails its chunk-mates, while pid tags are
    refreshed per task for crash attribution.
    """
    if batches:
        _attach_batches(batches)
    if cache_key is not None:
        cached = _WORKER_ENGINES.get(cache_key)
        if cached is None:
            if len(_WORKER_ENGINES) >= _WORKER_ENGINE_CACHE_LIMIT:
                _WORKER_ENGINES.clear()
            _WORKER_ENGINES[cache_key] = (engine, scenario)
        else:
            engine, scenario = cached
    outcomes: List[Tuple[str, Any]] = []
    for lambda_g, task_id in items:
        _note_worker_task(registry_dir, task_id)
        _maybe_inject_fault(task_id)
        try:
            record = _evaluate_point(engine, scenario, lambda_g)
        except Exception as error:  # noqa: BLE001 - contained per-task failure
            outcomes.append(("error", repr(error)))
        else:
            outcomes.append(("ok", record))
    return outcomes


def _scenario_shapes(scenario: Scenario) -> List[Tuple[int, int]]:
    """The tree shapes a multi-cluster scenario compiles (clusters plus ICN2).

    Only meaningful when ``scenario.system`` is set; zoo scenarios export
    whole compiled graphs instead (see :meth:`WorkerDaemon.prepare`).
    """
    spec = scenario.system
    if spec is None:
        return []
    heights = (*spec.cluster_heights, spec.icn2_height)
    return list(dict.fromkeys((spec.m, height) for height in heights))


# --------------------------------------------------------------------------- #
# The daemon
# --------------------------------------------------------------------------- #
class WorkerDaemon:
    """A long-lived worker pool plus the shared compiled state it serves.

    Lifecycle: construct (optionally :meth:`start`), run any number of
    campaigns through :class:`PersistentPoolBackend`, then :meth:`shutdown`
    — which is what unlinks every shared-memory segment the daemon
    exported.  Also usable as a context manager.  All public methods are
    thread-safe; the serving front-end drives one daemon from several
    executor threads at once.

    Workers are spawned on demand by the pool (up to ``max_workers``) and
    persist until a crash or shutdown; a broken pool is replaced lazily on
    the next submission, and :attr:`restarts` counts those replacements.
    """

    def __init__(
        self, max_workers: Optional[int] = None, *, use_shared_memory: bool = True
    ) -> None:
        self.max_workers = max(
            1, int(max_workers) if max_workers is not None else (os.cpu_count() or 1)
        )
        self.use_shared_memory = bool(use_shared_memory)
        self._lock = threading.RLock()
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_generation = 0
        self._arenas: List[SharedArena] = []
        self._batches: List[Dict[str, Any]] = []
        #: export keys already packed: (m, height) tree shapes and
        #: ("zoo", identity) zoo specs
        self._exported: Set[Any] = set()
        self._closed = False
        #: tasks handed to workers (never incremented for store hits, which
        #: the executor serves before any submission — the "warm requests
        #: bypass workers" invariant is an assertion on this counter)
        self.tasks_dispatched = 0
        self.restarts = 0
        atexit.register(self._cleanup_segments)

    # ------------------------------------------------------------- lifecycle
    def start(self) -> "WorkerDaemon":
        """Create the pool eagerly (otherwise the first submission does)."""
        with self._lock:
            self._ensure_pool()
        return self

    def __enter__(self) -> "WorkerDaemon":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._closed:
            raise ValidationError("worker daemon is shut down")
        if self._pool is None:
            # Spawn, not fork: the serving front-end submits from executor
            # threads while the event-loop thread runs, and forking a
            # multithreaded process leaves children deadlocked on inherited
            # locks.  Spawned workers also inherit no compiled caches, which
            # is exactly the case the shared-memory export exists for.
            self._pool = ProcessPoolExecutor(
                max_workers=self.max_workers,
                mp_context=multiprocessing.get_context("spawn"),
            )
            self._pool_generation += 1
        return self._pool

    def shutdown(self, *, wait: bool = True) -> None:
        """Stop the workers and unlink every exported shm segment."""
        with self._lock:
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=wait, cancel_futures=True)
        self._cleanup_segments()

    def _cleanup_segments(self) -> None:
        with self._lock:
            arenas, self._arenas = self._arenas, []
            self._batches = []
            self._exported = set()
        for arena in arenas:
            arena.destroy()

    # ------------------------------------------------------------ preparation
    def prepare(self, engine: Engine, scenario: Scenario) -> None:
        """Warm this process for one (engine, scenario) and export its shapes.

        The engine's own ``prepare`` compiles the system and route tables in
        the daemon process; shapes not yet exported are then packed into
        fresh shared-memory arenas so the spawn-started workers — which
        inherit none of this process's caches — map them instead of
        recompiling.
        """
        prepare = getattr(engine, "prepare", None)
        if prepare is not None:
            prepare(scenario)
        if not self.use_shared_memory or not getattr(engine, "expensive", True):
            return
        with self._lock:
            if scenario.system is not None:
                shapes = [
                    shape
                    for shape in _scenario_shapes(scenario)
                    if shape not in self._exported
                ]
                if not shapes:
                    return
                tree_arena, tree_manifest = export_trees(shapes)
                route_arena, route_manifest = export_route_tables(shapes)
                self._arenas.extend((tree_arena, route_arena))
                self._batches.append(
                    {
                        "token": f"{id(self)}-{len(self._batches)}",
                        "trees": tree_manifest,
                        "routes": route_manifest,
                    }
                )
                self._exported.update(shapes)
            else:
                # Zoo scenario: export the whole compiled graph and its
                # complete route table, keyed by the spec's full identity.
                spec = scenario.topology
                key = ("zoo", spec.identity)
                if key in self._exported:
                    return
                graph_arena, graph_manifest = export_graphs((spec,))
                route_arena, route_manifest = export_graph_route_tables((spec,))
                self._arenas.extend((graph_arena, route_arena))
                self._batches.append(
                    {
                        "token": f"{id(self)}-{len(self._batches)}",
                        "graphs": graph_manifest,
                        "graph_routes": route_manifest,
                    }
                )
                self._exported.add(key)

    # ------------------------------------------------------------- execution
    def submit(
        self,
        engine: Engine,
        scenario: Scenario,
        lambda_g: float,
        task_id: str,
        registry_dir: Optional[str],
        *,
        named_engine: bool,
    ) -> Future:
        """Hand one task to the pool, restarting it once if it arrived broken.

        Only registry-named engines get a worker-side cache key (an engine
        *instance* may carry arbitrary programmatic state that must not be
        conflated across campaigns by name).
        """
        with self._lock:
            pool = self._ensure_pool()
            batches = tuple(self._batches) if self.use_shared_memory else None
            cache_key = (
                (engine.name, json.dumps(scenario.to_dict(), sort_keys=True))
                if named_engine
                else None
            )
            self.tasks_dispatched += 1
        args = (batches, engine, scenario, lambda_g, task_id, registry_dir, cache_key)
        try:
            return pool.submit(_daemon_evaluate, *args)
        except (BrokenProcessPool, RuntimeError):
            # The pool broke under another campaign between rounds; retire
            # it and resubmit on a fresh one (a second failure propagates).
            with self._lock:
                self._retire_pool(pool)
                pool = self._ensure_pool()
            return pool.submit(_daemon_evaluate, *args)

    def submit_chunk(
        self,
        engine: Engine,
        scenario: Scenario,
        items: Sequence[Tuple[float, str]],
        registry_dir: Optional[str],
        *,
        named_engine: bool,
    ) -> Future:
        """Hand a chunk of same-(engine, scenario) tasks to the pool.

        Same broken-pool recovery as :meth:`submit`; the future resolves to
        the per-task outcome list of :func:`_daemon_evaluate_chunk`.
        """
        with self._lock:
            pool = self._ensure_pool()
            batches = tuple(self._batches) if self.use_shared_memory else None
            cache_key = (
                (engine.name, json.dumps(scenario.to_dict(), sort_keys=True))
                if named_engine
                else None
            )
            self.tasks_dispatched += len(items)
        args = (batches, engine, scenario, tuple(items), registry_dir, cache_key)
        try:
            return pool.submit(_daemon_evaluate_chunk, *args)
        except (BrokenProcessPool, RuntimeError):
            with self._lock:
                self._retire_pool(pool)
                pool = self._ensure_pool()
            return pool.submit(_daemon_evaluate_chunk, *args)

    def _retire_pool(self, pool: ProcessPoolExecutor) -> None:
        """Drop ``pool`` if it is still current (idempotent across sharers)."""
        if self._pool is pool:
            self._pool = None
            self.restarts += 1
            pool.shutdown(wait=False, cancel_futures=True)

    def pool_generation(self) -> int:
        """Ensure a pool exists and return its generation number."""
        with self._lock:
            self._ensure_pool()
            return self._pool_generation

    def restart(self, generation: Optional[int] = None) -> None:
        """Retire the current pool (if ``generation`` still names it).

        Several backends sharing one daemon all report the same broken pool;
        the generation guard makes sure it is only restarted once.  The
        replacement pool is created lazily by the next submission.
        """
        with self._lock:
            pool = self._pool
            if pool is None:
                return
            if generation is not None and generation != self._pool_generation:
                return
            self._retire_pool(pool)

    # ------------------------------------------------------------ observation
    def worker_snapshot(self) -> Dict[int, Any]:
        """pid -> process handle for the current pool's live workers."""
        with self._lock:
            if self._pool is None:
                return {}
            return dict(getattr(self._pool, "_processes", None) or {})

    def worker_pids(self) -> Tuple[int, ...]:
        return tuple(self.worker_snapshot())

    def kill_workers(self) -> None:
        """Terminate every worker (the executor's timeout reclaim path).

        This breaks the shared pool for *every* campaign running on the
        daemon; sharers recover through their retry rounds.
        """
        for process in self.worker_snapshot().values():
            try:
                process.terminate()
            except Exception:  # pragma: no cover - already-dead worker
                pass

    def segment_names(self) -> Tuple[str, ...]:
        """Names of the shm segments this daemon currently owns."""
        with self._lock:
            return tuple(arena.name for arena in self._arenas)

    def stats(self) -> Dict[str, Any]:
        """A JSON-able health snapshot (the ``/health`` endpoint body)."""
        with self._lock:
            return {
                "max_workers": self.max_workers,
                "worker_pids": sorted(self.worker_pids()),
                "tasks_dispatched": self.tasks_dispatched,
                "restarts": self.restarts,
                "shared_memory": self.use_shared_memory,
                "shared_memory_segments": list(self.segment_names()),
                "closed": self._closed,
            }


# --------------------------------------------------------------------------- #
# The executor adapter
# --------------------------------------------------------------------------- #
class PersistentPoolBackend(WorkerBackend):
    """Run a campaign's pooled tasks on a shared :class:`WorkerDaemon`.

    One backend instance per :class:`~repro.campaign.CampaignExecutor`; any
    number of instances may point at the same daemon concurrently.  The
    executor's retry machinery is unchanged: a broken round retires the
    daemon's pool (once, generation-guarded) and the next round's
    submissions bring up a fresh one.
    """

    persistent = True

    def __init__(self, daemon: WorkerDaemon) -> None:
        self.daemon = daemon
        self._workers: Dict[int, Any] = {}
        self._generation: Optional[int] = None

    def prepare_entry(self, engine: Engine, scenario: Scenario) -> None:
        self.daemon.prepare(engine, scenario)

    def begin_round(self, workers: int) -> int:
        self._generation = self.daemon.pool_generation()
        return max(1, min(workers, self.daemon.max_workers))

    def submit(
        self,
        engine: Engine,
        scenario: Scenario,
        lambda_g: float,
        task_id: str,
        registry_dir: Optional[str],
        *,
        named_engine: bool,
    ) -> Future:
        return self.daemon.submit(
            engine,
            scenario,
            lambda_g,
            task_id,
            registry_dir,
            named_engine=named_engine,
        )

    def submit_chunk(
        self,
        engine: Engine,
        scenario: Scenario,
        items: Sequence[Tuple[float, str]],
        registry_dir: Optional[str],
        *,
        named_engine: bool,
    ) -> Future:
        return self.daemon.submit_chunk(
            engine,
            scenario,
            items,
            registry_dir,
            named_engine=named_engine,
        )

    def note_workers(self) -> None:
        self._workers = self.daemon.worker_snapshot()

    def dead_worker_pids(self) -> Tuple[int, ...]:
        return tuple(
            pid for pid, process in self._workers.items() if not process.is_alive()
        )

    def kill_workers(self) -> None:
        self.daemon.kill_workers()

    def end_round(self, *, broken: bool) -> None:
        if broken:
            self.daemon.restart(self._generation)
        self._workers = {}

    def close(self) -> None:
        """The daemon's lifecycle belongs to its owner, not any one campaign."""
