"""Reproduction of "Analysis of Interconnection Networks in Heterogeneous
Multi-Cluster Systems" (Javadi, Abawajy, Akbari, Nahavandi — ICPP Workshops
2006).

The package provides, as importable building blocks:

* the **analytical latency model** that is the paper's contribution
  (:class:`repro.model.MultiClusterLatencyModel` and friends),
* every **substrate** it stands on — the m-port n-tree topology
  (:mod:`repro.topology`), deterministic Up*/Down* routing
  (:mod:`repro.routing`), a discrete-event kernel (:mod:`repro.des`) and the
  flit-level wormhole **simulator** used for validation (:mod:`repro.sim`),
* **workloads** (:mod:`repro.workloads`) and the **experiment harness**
  (:mod:`repro.experiments`) that regenerates Table 1 and Figures 3-4,
* a command line, ``repro-multicluster`` (:mod:`repro.cli`).

Quick start::

    from repro import MessageSpec, MultiClusterLatencyModel, table1_system

    model = MultiClusterLatencyModel(table1_system(544), MessageSpec(32, 256))
    print(model.mean_latency(2e-4))
"""

from repro.experiments.configs import table1_system
from repro.model.latency import MultiClusterLatencyModel
from repro.model.parameters import MessageSpec, ModelParameters, TimingParameters
from repro.sim.config import SimulationConfig
from repro.sim.simulator import MultiClusterSimulator
from repro.topology.multicluster import ClusterSpec, MultiClusterSpec, MultiClusterSystem

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ClusterSpec",
    "MessageSpec",
    "ModelParameters",
    "MultiClusterLatencyModel",
    "MultiClusterSimulator",
    "MultiClusterSpec",
    "MultiClusterSystem",
    "SimulationConfig",
    "TimingParameters",
    "table1_system",
]
