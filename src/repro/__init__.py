"""Reproduction of "Analysis of Interconnection Networks in Heterogeneous
Multi-Cluster Systems" (Javadi, Abawajy, Akbari, Nahavandi — ICPP Workshops
2006).

The package provides, as importable building blocks:

* the **analytical latency model** that is the paper's contribution
  (:class:`repro.model.MultiClusterLatencyModel` and friends),
* every **substrate** it stands on — the m-port n-tree topology
  (:mod:`repro.topology`), deterministic Up*/Down* routing
  (:mod:`repro.routing`), a discrete-event kernel (:mod:`repro.des`) and the
  flit-level wormhole **simulator** used for validation (:mod:`repro.sim`),
* **workloads** (:mod:`repro.workloads`) and the **experiment harness**
  (:mod:`repro.experiments`) that regenerates Table 1 and Figures 3-4,
* the **unified scenario/engine API** (:mod:`repro.api`): declarative
  :class:`~repro.api.Scenario` objects (JSON round-trippable), pluggable
  analysis/simulation engines and a parallel :func:`repro.api.run`,
* the **Campaign API** (:mod:`repro.campaign`): multi-scenario execution
  plans flattened into one shared-pool task queue, streamed as they finish,
  made fault-tolerant by a :class:`~repro.campaign.RetryPolicy` (crashed or
  hung workers are re-queued, exhausted tasks surface as structured
  failures) and backed by a content-addressed result store
  (:mod:`repro.store`, pluggable directory / single-file SQLite backends)
  so re-runs only simulate what changed,
* the **campaign service** (:mod:`repro.service`): a persistent warm
  worker daemon (compiled route tables shared via
  :mod:`multiprocessing.shared_memory`) behind a stdlib asyncio HTTP
  front-end (``repro-multicluster serve``) that streams campaign progress
  to any number of concurrent clients as server-sent events,
* a command line, ``repro-multicluster`` (:mod:`repro.cli`).

Quick start — one declarative call runs the model and the simulator over the
same scenario (``parallel=True`` spreads simulation points over the cores)::

    from repro import api

    result = api.run(api.scenario("fig3", points=8),
                     engines=("model", "sim"), parallel=True)
    for record in result.series("sim"):
        print(record.lambda_g, record.latency, record.metadata["seed"])

or, at the building-block level::

    from repro import MessageSpec, MultiClusterLatencyModel, table1_system

    model = MultiClusterLatencyModel(table1_system(544), MessageSpec(32, 256))
    print(model.mean_latency(2e-4))
"""

from repro import api
from repro.api import RunRecord, RunSet, Scenario, run, scenario
from repro.campaign import (
    Campaign,
    CampaignEntry,
    CampaignExecutionError,
    CampaignExecutor,
    CampaignResult,
    RetryPolicy,
    run_campaign,
)
from repro.experiments.configs import table1_system
from repro.model.latency import MultiClusterLatencyModel
from repro.model.parameters import MessageSpec, ModelParameters, TimingParameters
from repro.sim.config import SimulationConfig
from repro.sim.simulator import MultiClusterSimulator
from repro.store import ResultStore
from repro.topology.multicluster import ClusterSpec, MultiClusterSpec, MultiClusterSystem

__version__ = "1.7.0"

__all__ = [
    "__version__",
    "api",
    "Campaign",
    "CampaignEntry",
    "CampaignExecutionError",
    "CampaignExecutor",
    "CampaignResult",
    "ClusterSpec",
    "MessageSpec",
    "ModelParameters",
    "MultiClusterLatencyModel",
    "MultiClusterSimulator",
    "MultiClusterSpec",
    "MultiClusterSystem",
    "ResultStore",
    "RetryPolicy",
    "RunRecord",
    "RunSet",
    "Scenario",
    "SimulationConfig",
    "TimingParameters",
    "run",
    "run_campaign",
    "scenario",
    "table1_system",
]
