"""The simulation :class:`Environment`: clock, event queue and run loop."""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Generator, List, Optional, Tuple

from repro.des.events import (
    AllOf,
    AnyOf,
    Environment_NORMAL,
    Environment_URGENT,
    Event,
    Process,
    Timeout,
)
from repro.des.exceptions import SimulationError, StopSimulation


class Environment:
    """Execution environment of a discrete-event simulation.

    The environment keeps the current simulation time (:attr:`now`), the
    pending event queue and offers factory helpers for the common event
    types.  Time is a float in the paper's abstract "time units".
    """

    #: scheduling priority constants (smaller fires first at equal times)
    URGENT = Environment_URGENT
    NORMAL = Environment_NORMAL

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._eid = count()
        self._active_process: Optional[Process] = None

    # -- clock and queue ----------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed (None outside process code)."""
        return self._active_process

    def schedule(self, event: Event, priority: int = Environment_NORMAL, delay: float = 0.0) -> None:
        """Insert a triggered event into the queue ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        heapq.heappush(self._queue, (self._now + delay, priority, next(self._eid), event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if the queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    @property
    def queue_size(self) -> int:
        """Number of events currently scheduled (diagnostic aid)."""
        return len(self._queue)

    # -- event factories ------------------------------------------------------
    def event(self) -> Event:
        """Create a new untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires after ``delay`` time units."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any]) -> Process:
        """Start ``generator`` as a new process."""
        return Process(self, generator)

    def all_of(self, events) -> AllOf:
        """Composite event succeeding once all ``events`` succeed."""
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        """Composite event succeeding once any of ``events`` succeeds."""
        return AnyOf(self, events)

    # -- run loop -------------------------------------------------------------
    def step(self) -> None:
        """Process the next scheduled event.

        Raises
        ------
        SimulationError
            If the queue is empty.
        """
        try:
            self._now, _, _, event = heapq.heappop(self._queue)
        except IndexError:
            raise SimulationError("cannot step an empty event queue") from None

        callbacks, event.callbacks = event.callbacks, None
        if callbacks is None:
            # Event was already processed (can happen for shared condition
            # members); nothing to do.
            return
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            # A failed event nobody waited on: surface the error.
            exc = event._value
            raise exc

    def run(self, until: float | Event | None = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None`` runs until the event queue is exhausted; a number runs
            until that simulation time; an :class:`Event` runs until that
            event is processed and returns its value.
        """
        stop_event: Optional[Event] = None
        if until is None:
            pass
        elif isinstance(until, Event):
            stop_event = until
            if stop_event.callbacks is None:
                return stop_event.value
            stop_event.callbacks.append(self._stop_callback)
        else:
            at = float(until)
            if at < self._now:
                raise SimulationError(
                    f"until={at} lies in the past (now={self._now})"
                )
            stop_event = Event(self)
            stop_event._ok = True
            stop_event._value = None
            stop_event.callbacks.append(self._stop_callback)
            heapq.heappush(self._queue, (at, Environment_URGENT, next(self._eid), stop_event))

        try:
            while self._queue:
                self.step()
        except StopSimulation as stop:
            return stop.value

        if stop_event is not None and isinstance(until, Event):
            if not stop_event.triggered:
                raise SimulationError(
                    "run(until=event) finished but the event never triggered"
                )
            return stop_event.value
        if isinstance(until, (int, float)) and until is not None:
            # Queue exhausted before reaching `until`: simply advance the clock.
            self._now = max(self._now, float(until))
        return None

    @staticmethod
    def _stop_callback(event: Event) -> None:
        if event._ok:
            raise StopSimulation(event._value)
        raise event._value
