"""The simulation :class:`Environment`: clock, event queue and run loop."""

from __future__ import annotations

import os
from heapq import heappop, heappush
from itertools import count
from math import inf
from typing import Any, Generator, List, Optional, Tuple

from repro.des.calendar import CalendarQueue
from repro.des.events import (
    AllOf,
    AnyOf,
    Environment_NORMAL,
    Environment_URGENT,
    Event,
    Process,
    Timeout,
)
from repro.des.exceptions import QueueEmpty, SimulationError, StopSimulation

#: Recognised scheduler selection modes.
SCHEDULER_MODES = ("auto", "heap", "calendar")

#: Scheduler used when neither the constructor nor ``REPRO_DES_SCHEDULER``
#: selects one.  The result store's task keys hash this default, so it must
#: live here — next to the code it selects — not as a copied literal.
DEFAULT_SCHEDULER = "auto"

#: Queue size at which ``auto`` migrates from the flat heap to the calendar
#: queue.  Below this the C-implemented heap wins outright; above it the
#: event times are dense enough (thousands of pending arrivals and in-flight
#: messages) that bucketing pays for itself.  Override per environment via
#: the constructor or globally via ``REPRO_DES_CALENDAR_THRESHOLD``.
DEFAULT_CALENDAR_THRESHOLD = 4096


class Environment:
    """Execution environment of a discrete-event simulation.

    The environment keeps the current simulation time (:attr:`now`), the
    pending event queue and offers factory helpers for the common event
    types.  Time is a float in the paper's abstract "time units".

    Parameters
    ----------
    initial_time:
        Simulation clock at creation.
    scheduler:
        Event-queue strategy: ``"heap"`` pins the flat binary heap,
        ``"calendar"`` pins the bucketed :class:`CalendarQueue`, and
        ``"auto"`` (default) starts on the heap and migrates to a calendar
        queue sized from the live queue once it grows past
        ``calendar_threshold`` entries.  Defaults to the
        ``REPRO_DES_SCHEDULER`` environment variable when unset, so a
        debugging session can force either structure without touching code.
        Both schedulers pop events in exactly the same order — the choice
        affects wall-clock only, never results.
    calendar_threshold:
        Queue size that triggers the ``auto`` migration (default
        ``REPRO_DES_CALENDAR_THRESHOLD`` or 4096).
    """

    #: scheduling priority constants (smaller fires first at equal times)
    URGENT = Environment_URGENT
    NORMAL = Environment_NORMAL

    def __init__(
        self,
        initial_time: float = 0.0,
        scheduler: Optional[str] = None,
        calendar_threshold: Optional[int] = None,
    ) -> None:
        self._now = float(initial_time)
        self._eid = count()
        self._active_process: Optional[Process] = None
        if scheduler is None:
            scheduler = os.environ.get("REPRO_DES_SCHEDULER", DEFAULT_SCHEDULER)
        if scheduler not in SCHEDULER_MODES:
            raise SimulationError(
                f"unknown scheduler {scheduler!r}; expected one of {SCHEDULER_MODES}"
            )
        self.scheduler = scheduler
        #: flat heap of (time, priority, eid, event); active while
        #: :attr:`_calendar` is None
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._calendar: Optional[CalendarQueue] = (
            CalendarQueue() if scheduler == "calendar" else None
        )
        if calendar_threshold is None:
            calendar_threshold = int(
                os.environ.get(
                    "REPRO_DES_CALENDAR_THRESHOLD", DEFAULT_CALENDAR_THRESHOLD
                )
            )
        # The hot path guards migration with one integer comparison; pinning
        # the heap simply makes that comparison unwinnable.
        self._calendar_threshold: float = (
            calendar_threshold if scheduler == "auto" else inf
        )
        #: Events popped and dispatched over the environment's lifetime.
        #: Fuels the benchmark's events-per-second figure; costs one local
        #: increment per event in the run loop.
        self.events_processed = 0

    # -- clock and queue ----------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed (None outside process code)."""
        return self._active_process

    @property
    def active_scheduler(self) -> str:
        """The queue structure currently in use: ``"heap"`` or ``"calendar"``."""
        return "calendar" if self._calendar is not None else "heap"

    def schedule(self, event: Event, priority: int = Environment_NORMAL, delay: float = 0.0) -> None:
        """Insert a triggered event into the queue ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        calendar = self._calendar
        if calendar is None:
            heappush(self._queue, (self._now + delay, priority, next(self._eid), event))
            if len(self._queue) >= self._calendar_threshold:
                self._migrate_to_calendar()
        else:
            calendar.push(self._now + delay, priority, next(self._eid), event)

    def _schedule_at(self, time: float, priority: int, event: Event) -> None:
        """Absolute-time insert (run's stop event) honouring the active scheduler.

        ``run(until=<number>)`` must land its stop event in whichever
        structure currently backs the queue — a raw ``heappush`` into the
        heap list would silently strand the stop event once the calendar is
        active and let the simulation drain past ``until``.
        """
        calendar = self._calendar
        if calendar is None:
            heappush(self._queue, (time, priority, next(self._eid), event))
        else:
            calendar.push(time, priority, next(self._eid), event)

    def _migrate_to_calendar(self) -> None:
        """Move every pending entry from the heap into a calendar queue."""
        self._calendar = CalendarQueue.from_entries(self._queue)
        self._queue = []
        self._calendar_threshold = inf

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if the queue is empty."""
        calendar = self._calendar
        if calendar is None:
            return self._queue[0][0] if self._queue else inf
        return calendar.peek_time()

    @property
    def queue_size(self) -> int:
        """Number of events currently scheduled (diagnostic aid)."""
        calendar = self._calendar
        return len(self._queue) if calendar is None else len(calendar)

    # -- event factories ------------------------------------------------------
    def event(self) -> Event:
        """Create a new untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires after ``delay`` time units."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any]) -> Process:
        """Start ``generator`` as a new process."""
        return Process(self, generator)

    def all_of(self, events) -> AllOf:
        """Composite event succeeding once all ``events`` succeed."""
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        """Composite event succeeding once any of ``events`` succeeds."""
        return AnyOf(self, events)

    # -- run loop -------------------------------------------------------------
    def step(self) -> None:
        """Process the next scheduled event.

        Raises
        ------
        QueueEmpty
            If the queue is empty (a :class:`SimulationError` subclass).
        """
        calendar = self._calendar
        try:
            if calendar is None:
                self._now, _, _, event = heappop(self._queue)
            else:
                self._now, _, _, event = calendar.pop()
        except IndexError:
            raise QueueEmpty("cannot step an empty event queue") from None

        self.events_processed += 1
        callbacks, event.callbacks = event.callbacks, None
        if callbacks is None:
            # Event was already processed (can happen for shared condition
            # members); nothing to do.
            return
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            # A failed event nobody waited on: surface the error.
            exc = event._value
            raise exc

    def run(self, until: float | Event | None = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None`` runs until the event queue is exhausted; a number runs
            until that simulation time (events scheduled *at* the stop time
            with :data:`~Environment.NORMAL` priority are left pending; only
            URGENT events enqueued at the stop time before ``run`` was called
            still fire); an :class:`Event` runs until that event is processed
            and returns its value.
        """
        stop_event: Optional[Event] = None
        if until is None:
            pass
        elif isinstance(until, Event):
            stop_event = until
            if stop_event.callbacks is None:
                return stop_event.value
            stop_event.callbacks.append(self._stop_callback)
        else:
            at = float(until)
            if at < self._now:
                raise SimulationError(
                    f"until={at} lies in the past (now={self._now})"
                )
            stop_event = Event(self)
            stop_event._ok = True
            stop_event._value = None
            stop_event.callbacks.append(self._stop_callback)
            self._schedule_at(at, Environment_URGENT, stop_event)

        try:
            self._run_loop()
        except StopSimulation as stop:
            return stop.value

        # Numeric `until` always stops through its scheduled stop event, so
        # reaching this point means `until` was None or an Event.
        if stop_event is not None:
            if not stop_event.triggered:
                raise SimulationError(
                    "run(until=event) finished but the event never triggered"
                )
            return stop_event.value
        return None

    def _run_loop(self) -> None:
        """Drain the queue (the body of :meth:`run`).

        This is :meth:`step` unrolled into one loop: a simulation run
        processes hundreds of thousands of events, and the per-event method
        call and exception frame of calling ``step()`` from Python are
        measurable.  Any semantic change here must be mirrored in
        :meth:`step` (and vice versa) — the test suite drives both.
        """
        processed = 0
        try:
            while True:
                # Re-read the structure each iteration: a schedule() inside a
                # callback may migrate the heap to the calendar mid-run.
                calendar = self._calendar
                try:
                    if calendar is None:
                        self._now, _, _, event = heappop(self._queue)
                    else:
                        self._now, _, _, event = calendar.pop()
                except IndexError:
                    return
                processed += 1
                callbacks = event.callbacks
                event.callbacks = None
                if callbacks is None:
                    continue
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    raise event._value
        finally:
            # Accumulated once per run, not per event: the counter lives on
            # the instance but the hot loop only touches the local.
            self.events_processed += processed

    @staticmethod
    def _stop_callback(event: Event) -> None:
        if event._ok:
            raise StopSimulation(event._value)
        raise event._value
