"""A bucketed (calendar-queue) event scheduler with heap-identical pop order.

The generic event queue of :class:`~repro.des.core.Environment` is a single
binary heap of ``(time, priority, eid, event)`` entries.  That is optimal for
sparse queues, but a wormhole simulation of a thousand-node system keeps one
pending event per source plus one per in-flight message — thousands of
entries whose times cluster densely — and every push/pop then pays
``O(log n)`` tuple comparisons against the full queue.

:class:`CalendarQueue` is the classic alternative (R. Brown, CACM 1988):
time is cut into fixed-width buckets and an entry only ever competes against
the entries of its own bucket.  This implementation is a two-level heap —

* a dict maps the bucket index ``floor(time / width)`` to a small per-bucket
  heap of entries, and
* a heap of occupied bucket indexes yields the earliest bucket;

so a push touches one small heap, and a pop touches the head bucket only.

The width chosen at migration time is not frozen: every
:data:`RESIZE_CHECK_INTERVAL` pushes the queue compares its mean bucket
occupancy against :data:`TARGET_OCCUPANCY` and rebuilds itself with a width
recomputed by :func:`sized_width` when event-time density has drifted — the
dynamic-sizing rule of Brown's original calendar queue.  A long-running
simulation whose inter-event gaps shrink (rising load) or stretch (drain
phase) therefore keeps O(1) pops instead of degenerating into one giant or
thousands of single-entry buckets.  The same machinery drives the batched
:class:`~repro.des.ring.CalendarRing`.

**Pop order is bit-identical to the flat heap.**  Bucket indexes are
monotone in time (``floor`` of a positive multiple), so the earliest bucket
always holds the globally earliest entry, and within a bucket ``heapq``
orders entries by the exact ``(time, priority, eid)`` key the flat heap
uses.  A property test (``tests/des/test_calendar.py``) drives both
structures through random interleaved push/pop schedules and asserts the
sequences match element for element; the golden-seed regression pins the
same guarantee end to end.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from math import floor, inf
from typing import Any, Iterable, List, Tuple

from repro.des.exceptions import SimulationError

__all__ = ["CalendarQueue", "sized_width", "spacing_width"]

#: One scheduled event: the exact entry layout of the Environment heap.
Entry = Tuple[float, int, int, Any]

#: Mean entries per bucket targeted when sizing the bucket width from a
#: snapshot of the queue.  Small enough that per-bucket heaps stay a few
#: cache lines, large enough that the bucket-index heap is rarely touched.
TARGET_OCCUPANCY = 4

#: Width floor: protects against degenerate spans (all entries at one time).
MIN_WIDTH = 1e-12

#: Pushes between occupancy checks.  Resizing is O(n); checking every push
#: would make the constant factor visible, checking never is the old bug.
RESIZE_CHECK_INTERVAL = 4096

#: Occupancy (and width) band treated as "close enough": a resize only
#: fires when the observed mean occupancy leaves
#: ``[TARGET/HYSTERESIS, TARGET*HYSTERESIS]`` *and* the recomputed width
#: differs from the current one by more than the same factor.
RESIZE_HYSTERESIS = 4.0

#: Queues smaller than this never resize — a handful of entries cannot
#: estimate density, and small queues are fast under any width.
RESIZE_MIN_ENTRIES = 64


def sized_width(
    min_time: float,
    max_time: float,
    count: int,
    occupancy: int = TARGET_OCCUPANCY,
) -> float:
    """Bucket width putting ``occupancy`` entries per bucket on average.

    The single sizing rule shared by heap migration
    (:meth:`CalendarQueue.from_entries`), the occupancy-triggered resize of
    both calendar structures, and :class:`~repro.des.ring.CalendarRing`.
    """
    span = max_time - min_time
    return max(span * occupancy / count, MIN_WIDTH) if count else 1.0


#: Entries sampled from the front of the queue when estimating the width
#: from local event spacing (see :func:`spacing_width`).
HEAD_SAMPLE = 256


def spacing_width(
    distinct_sorted_times: "List[float]",
    occupancy: int = TARGET_OCCUPANCY,
) -> "float | None":
    """Bucket width from the mean spacing of the earliest *distinct* times.

    :func:`sized_width` divides the global span by the global count, which
    misjudges skewed schedules badly: a simulation keeps thousands of
    far-future arrivals spread over many mean inter-arrival times *and* a
    dense knot of in-flight events within one message latency of the clock.
    Pops happen at the knot, so the width that matters is the local spacing
    there — Brown's original calendar queue likewise sizes from the
    separation of a sample of events at the head, not from the whole queue.

    ``distinct_sorted_times`` is the deduplicated, ascending sample (equal
    times share a bucket whatever the width, so duplicates carry no sizing
    information).  Returns ``None`` when the sample has fewer than two
    distinct times — no spacing to measure.
    """
    count = len(distinct_sorted_times)
    if count < 2:
        return None
    gap = (distinct_sorted_times[-1] - distinct_sorted_times[0]) / (count - 1)
    if gap <= 0:
        return None
    return max(gap * occupancy, MIN_WIDTH)


class CalendarQueue:
    """Fixed-width bucketed event queue, pop-order-identical to a heap.

    Parameters
    ----------
    width:
        Bucket width in simulation-time units.  Use
        :meth:`from_entries` to derive a width from a live queue snapshot
        when migrating mid-run.
    """

    __slots__ = (
        "width",
        "_inv_width",
        "_buckets",
        "_slots",
        "_count",
        "_occupancy",
        "_ops",
        "_resizes",
    )

    def __init__(self, width: float = 1.0, occupancy: int = TARGET_OCCUPANCY) -> None:
        if not width > 0:
            raise SimulationError(f"bucket width must be > 0, got {width!r}")
        self.width = float(width)
        self._inv_width = 1.0 / self.width
        #: bucket index -> per-bucket entry heap (present only while non-empty)
        self._buckets: dict = {}
        #: heap of occupied bucket indexes
        self._slots: List[int] = []
        self._count = 0
        self._occupancy = occupancy
        self._ops = 0
        self._resizes = 0

    @classmethod
    def from_entries(
        cls, entries: Iterable[Entry], occupancy: int = TARGET_OCCUPANCY
    ) -> "CalendarQueue":
        """Build a queue holding ``entries``, width sized from their span.

        Used by the environment to migrate a flat heap mid-run: the width is
        chosen so buckets hold ``occupancy`` entries on average over the
        snapshot's time span, which tracks the queue's event-time density at
        the moment it grew past the migration threshold.
        """
        entries = list(entries)
        if entries:
            times = [entry[0] for entry in entries]
            width = sized_width(min(times), max(times), len(entries), occupancy)
        else:
            width = 1.0
        queue = cls(width=width, occupancy=occupancy)
        buckets = queue._buckets
        inv_width = queue._inv_width
        for entry in entries:
            slot = floor(entry[0] * inv_width)
            bucket = buckets.get(slot)
            if bucket is None:
                buckets[slot] = [entry]
            else:
                bucket.append(entry)
        for bucket in buckets.values():
            heapify(bucket)
        # A sorted list satisfies the heap invariant.
        queue._slots = sorted(buckets)
        queue._count = len(entries)
        return queue

    # ------------------------------------------------------------------ queue
    def push(self, time: float, priority: int, eid: int, event: Any) -> None:
        """Insert one entry (same key layout as the flat heap)."""
        slot = floor(time * self._inv_width)
        bucket = self._buckets.get(slot)
        if bucket is None:
            self._buckets[slot] = [(time, priority, eid, event)]
            heappush(self._slots, slot)
        else:
            heappush(bucket, (time, priority, eid, event))
        self._count += 1
        self._ops += 1
        if self._ops >= RESIZE_CHECK_INTERVAL:
            self._ops = 0
            self._maybe_resize()

    def pop(self) -> Entry:
        """Remove and return the earliest entry.

        Raises
        ------
        IndexError
            If the queue is empty (mirrors ``heapq.heappop`` so the
            environment's step loop treats both structures alike).
        """
        slot = self._slots[0]
        bucket = self._buckets[slot]
        entry = heappop(bucket)
        if not bucket:
            del self._buckets[slot]
            heappop(self._slots)
        self._count -= 1
        return entry

    def peek_time(self) -> float:
        """Time of the earliest entry, or ``inf`` when empty."""
        if not self._count:
            return inf
        return self._buckets[self._slots[0]][0][0]

    def __len__(self) -> int:
        return self._count

    # ---------------------------------------------------------------- resize
    def _maybe_resize(self) -> None:
        """Rebuild with a recomputed width when occupancy has drifted.

        Pop order is unaffected: entries are rebinned under a new width and
        slot assignment stays monotone in time, so the earliest bucket still
        holds the globally earliest entry.
        """
        count = self._count
        if count < RESIZE_MIN_ENTRIES:
            return
        occupancy = count / len(self._buckets)
        if (
            self._occupancy / RESIZE_HYSTERESIS
            <= occupancy
            <= self._occupancy * RESIZE_HYSTERESIS
        ):
            return
        entries = [entry for bucket in self._buckets.values() for entry in bucket]
        times = [entry[0] for entry in entries]
        width = sized_width(min(times), max(times), count, self._occupancy)
        if self.width / RESIZE_HYSTERESIS <= width <= self.width * RESIZE_HYSTERESIS:
            # Occupancy skew without a width change is clustering (e.g. a
            # degenerate span), not stale sizing; rebuilding would thrash.
            return
        self.width = width
        inv_width = self._inv_width = 1.0 / width
        buckets: dict = {}
        for entry in entries:
            slot = floor(entry[0] * inv_width)
            bucket = buckets.get(slot)
            if bucket is None:
                buckets[slot] = [entry]
            else:
                bucket.append(entry)
        for bucket in buckets.values():
            heapify(bucket)
        self._buckets = buckets
        # A sorted list satisfies the heap invariant.
        self._slots = sorted(buckets)
        self._resizes += 1

    # ------------------------------------------------------------ diagnostics
    @property
    def occupied_buckets(self) -> int:
        """Number of non-empty buckets (diagnostic aid)."""
        return len(self._buckets)

    @property
    def resizes(self) -> int:
        """How many occupancy-triggered rebuilds have happened (diagnostic)."""
        return self._resizes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CalendarQueue(width={self.width:g}, entries={self._count}, "
            f"buckets={len(self._buckets)})"
        )
