"""A bucketed (calendar-queue) event scheduler with heap-identical pop order.

The generic event queue of :class:`~repro.des.core.Environment` is a single
binary heap of ``(time, priority, eid, event)`` entries.  That is optimal for
sparse queues, but a wormhole simulation of a thousand-node system keeps one
pending event per source plus one per in-flight message — thousands of
entries whose times cluster densely — and every push/pop then pays
``O(log n)`` tuple comparisons against the full queue.

:class:`CalendarQueue` is the classic alternative (R. Brown, CACM 1988):
time is cut into fixed-width buckets and an entry only ever competes against
the entries of its own bucket.  This implementation is a two-level heap —

* a dict maps the bucket index ``floor(time / width)`` to a small per-bucket
  heap of entries, and
* a heap of occupied bucket indexes yields the earliest bucket;

so a push touches one small heap, and a pop touches the head bucket only.

**Pop order is bit-identical to the flat heap.**  Bucket indexes are
monotone in time (``floor`` of a positive multiple), so the earliest bucket
always holds the globally earliest entry, and within a bucket ``heapq``
orders entries by the exact ``(time, priority, eid)`` key the flat heap
uses.  A property test (``tests/des/test_calendar.py``) drives both
structures through random interleaved push/pop schedules and asserts the
sequences match element for element; the golden-seed regression pins the
same guarantee end to end.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from math import floor, inf
from typing import Any, Iterable, List, Tuple

from repro.des.exceptions import SimulationError

__all__ = ["CalendarQueue"]

#: One scheduled event: the exact entry layout of the Environment heap.
Entry = Tuple[float, int, int, Any]

#: Mean entries per bucket targeted when sizing the bucket width from a
#: snapshot of the queue.  Small enough that per-bucket heaps stay a few
#: cache lines, large enough that the bucket-index heap is rarely touched.
TARGET_OCCUPANCY = 4

#: Width floor: protects against degenerate spans (all entries at one time).
MIN_WIDTH = 1e-12


class CalendarQueue:
    """Fixed-width bucketed event queue, pop-order-identical to a heap.

    Parameters
    ----------
    width:
        Bucket width in simulation-time units.  Use
        :meth:`from_entries` to derive a width from a live queue snapshot
        when migrating mid-run.
    """

    __slots__ = ("width", "_inv_width", "_buckets", "_slots", "_count")

    def __init__(self, width: float = 1.0) -> None:
        if not width > 0:
            raise SimulationError(f"bucket width must be > 0, got {width!r}")
        self.width = float(width)
        self._inv_width = 1.0 / self.width
        #: bucket index -> per-bucket entry heap (present only while non-empty)
        self._buckets: dict = {}
        #: heap of occupied bucket indexes
        self._slots: List[int] = []
        self._count = 0

    @classmethod
    def from_entries(
        cls, entries: Iterable[Entry], occupancy: int = TARGET_OCCUPANCY
    ) -> "CalendarQueue":
        """Build a queue holding ``entries``, width sized from their span.

        Used by the environment to migrate a flat heap mid-run: the width is
        chosen so buckets hold ``occupancy`` entries on average over the
        snapshot's time span, which tracks the queue's event-time density at
        the moment it grew past the migration threshold.
        """
        entries = list(entries)
        if entries:
            times = [entry[0] for entry in entries]
            span = max(times) - min(times)
            width = max(span * occupancy / len(entries), MIN_WIDTH)
        else:
            width = 1.0
        queue = cls(width=width)
        buckets = queue._buckets
        inv_width = queue._inv_width
        for entry in entries:
            slot = floor(entry[0] * inv_width)
            bucket = buckets.get(slot)
            if bucket is None:
                buckets[slot] = [entry]
            else:
                bucket.append(entry)
        for bucket in buckets.values():
            heapify(bucket)
        # A sorted list satisfies the heap invariant.
        queue._slots = sorted(buckets)
        queue._count = len(entries)
        return queue

    # ------------------------------------------------------------------ queue
    def push(self, time: float, priority: int, eid: int, event: Any) -> None:
        """Insert one entry (same key layout as the flat heap)."""
        slot = floor(time * self._inv_width)
        bucket = self._buckets.get(slot)
        if bucket is None:
            self._buckets[slot] = [(time, priority, eid, event)]
            heappush(self._slots, slot)
        else:
            heappush(bucket, (time, priority, eid, event))
        self._count += 1

    def pop(self) -> Entry:
        """Remove and return the earliest entry.

        Raises
        ------
        IndexError
            If the queue is empty (mirrors ``heapq.heappop`` so the
            environment's step loop treats both structures alike).
        """
        slot = self._slots[0]
        bucket = self._buckets[slot]
        entry = heappop(bucket)
        if not bucket:
            del self._buckets[slot]
            heappop(self._slots)
        self._count -= 1
        return entry

    def peek_time(self) -> float:
        """Time of the earliest entry, or ``inf`` when empty."""
        if not self._count:
            return inf
        return self._buckets[self._slots[0]][0][0]

    def __len__(self) -> int:
        return self._count

    # ------------------------------------------------------------ diagnostics
    @property
    def occupied_buckets(self) -> int:
        """Number of non-empty buckets (diagnostic aid)."""
        return len(self._buckets)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CalendarQueue(width={self.width:g}, entries={self._count}, "
            f"buckets={len(self._buckets)})"
        )
