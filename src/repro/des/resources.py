"""Shared-resource primitives for the DES kernel.

The wormhole simulator models every unidirectional channel, every injection
queue and every concentrator buffer as a contention point.  Three primitives
cover all of them:

* :class:`Resource` — a counted resource with FIFO queueing (a physical
  channel has capacity 1: the worm that holds it blocks everybody else);
* :class:`PriorityResource` — same, but requests carry a priority (used to
  let drain-phase bookkeeping jump the queue in experiments);
* :class:`Store` — a FIFO buffer of Python objects with optional capacity
  (used for concentrator/dispatcher buffers and for mailbox-style message
  hand-off between processes).

All requests are events, so processes simply ``yield`` them.  Following the
SimPy convention, ``Resource.request()`` is also a context manager so that
``with`` blocks release automatically even on interrupt.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import TYPE_CHECKING, Any, Callable, List, Optional

from repro.des.events import Event
from repro.des.exceptions import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.des.core import Environment


class Request(Event):
    """A pending claim on a :class:`Resource`.

    The request event succeeds once the resource grants it a slot.  Users
    normally obtain requests through :meth:`Resource.request` and yield them.
    """

    __slots__ = ("resource", "issued_at", "granted_at")

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource
        #: simulation time at which the request was issued (for queue statistics)
        self.issued_at = resource.env.now
        #: simulation time at which the request was granted (None while waiting)
        self.granted_at: Optional[float] = None
        resource._add_request(self)

    # -- context manager ----------------------------------------------------
    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.cancel()

    def cancel(self) -> None:
        """Release the slot (if granted) or withdraw the request (if waiting)."""
        self.resource._cancel_request(self)

    @property
    def wait_time(self) -> float:
        """Time spent waiting in the queue (valid once granted)."""
        if self.granted_at is None:
            raise SimulationError("request has not been granted yet")
        return self.granted_at - self.issued_at


class PriorityRequest(Request):
    """A :class:`Request` with an explicit priority (smaller = more urgent)."""

    __slots__ = ("priority",)

    def __init__(self, resource: "PriorityResource", priority: int = 0) -> None:
        self.priority = priority
        super().__init__(resource)


class Release(Event):
    """Explicit release event (alternative to the ``with`` protocol).

    Yielding the release event lets a process synchronise on the release being
    processed; it always succeeds immediately.
    """

    __slots__ = ("resource", "request")

    def __init__(self, resource: "Resource", request: Request) -> None:
        super().__init__(resource.env)
        self.resource = resource
        self.request = request
        resource._cancel_request(request)
        self.succeed()


class Resource:
    """A counted, FIFO-queued resource.

    Parameters
    ----------
    env:
        The simulation environment.
    capacity:
        Number of simultaneous users (1 for a physical channel).
    name:
        Optional label used in diagnostics and statistics.
    """

    request_cls = Request

    def __init__(self, env: "Environment", capacity: int = 1, name: str | None = None) -> None:
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity!r}")
        self.env = env
        self.capacity = int(capacity)
        self.name = name
        self._users: List[Request] = []
        self._queue: List[Request] = []
        #: total number of grants ever made (diagnostic / statistics aid)
        self.total_grants = 0
        #: accumulated time slots have been held (utilisation accounting);
        #: holders still active are not included until they release
        self.busy_time = 0.0

    # -- public API -----------------------------------------------------------
    def request(self) -> Request:
        """Issue a request for one slot of the resource."""
        return self.request_cls(self)

    def release(self, request: Request) -> Release:
        """Release the slot held by ``request``."""
        return Release(self, request)

    @property
    def count(self) -> int:
        """Number of slots currently in use."""
        return len(self._users)

    @property
    def users(self) -> List[Request]:
        """Requests currently holding a slot (copy)."""
        return list(self._users)

    @property
    def queue(self) -> List[Request]:
        """Requests currently waiting (copy, in grant order)."""
        return list(self._queue)

    @property
    def queue_length(self) -> int:
        """Number of waiting requests."""
        return len(self._queue)

    @property
    def busy(self) -> bool:
        """True if all slots are in use."""
        return len(self._users) >= self.capacity

    # -- internals ------------------------------------------------------------
    def _add_request(self, request: Request) -> None:
        self._queue.append(request)
        self._trigger_grants()

    def _cancel_request(self, request: Request) -> None:
        if request in self._users:
            self._users.remove(request)
            if request.granted_at is not None:
                self.busy_time += self.env.now - request.granted_at
            self._trigger_grants()
        elif request in self._queue:
            self._queue.remove(request)
        # A request that is neither queued nor granted has already been
        # cancelled; cancelling twice is a no-op so `with` blocks stay simple.

    def _select_next(self) -> Request:
        return self._queue.pop(0)

    def _trigger_grants(self) -> None:
        while self._queue and len(self._users) < self.capacity:
            request = self._select_next()
            self._users.append(request)
            request.granted_at = self.env.now
            self.total_grants += 1
            request.succeed(request)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<{type(self).__name__}{label} capacity={self.capacity} "
            f"users={len(self._users)} queued={len(self._queue)}>"
        )


class PriorityResource(Resource):
    """A :class:`Resource` whose queue is ordered by request priority.

    Ties are broken by issue order so the resource stays FIFO within a
    priority class (and therefore deterministic).
    """

    request_cls = PriorityRequest

    def __init__(self, env: "Environment", capacity: int = 1, name: str | None = None) -> None:
        super().__init__(env, capacity, name)
        self._heap: List[tuple] = []
        self._order = count()

    def request(self, priority: int = 0) -> PriorityRequest:  # type: ignore[override]
        return PriorityRequest(self, priority)

    def _add_request(self, request: Request) -> None:
        assert isinstance(request, PriorityRequest)
        heapq.heappush(self._heap, (request.priority, next(self._order), request))
        self._queue.append(request)  # keep the base-class bookkeeping in sync
        self._trigger_grants()

    def _select_next(self) -> Request:
        while True:
            _, _, request = heapq.heappop(self._heap)
            if request in self._queue:
                self._queue.remove(request)
                return request
            # request was cancelled while waiting: skip the stale heap entry.


class StorePut(Event):
    """A pending put into a :class:`Store` (waits while the store is full)."""

    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any) -> None:
        super().__init__(store.env)
        self.item = item
        store._put_queue.append(self)
        store._trigger()


class StoreGet(Event):
    """A pending get from a :class:`Store` (waits while the store is empty)."""

    __slots__ = ("filter_fn",)

    def __init__(self, store: "Store", filter_fn: Callable[[Any], bool] | None = None) -> None:
        super().__init__(store.env)
        self.filter_fn = filter_fn
        store._get_queue.append(self)
        store._trigger()


class Store:
    """A FIFO buffer of items with optional finite capacity.

    ``put`` blocks while the store is full; ``get`` blocks while it is empty.
    An optional filter on ``get`` allows selective retrieval (used by the
    dispatcher to pull only messages destined to its own cluster).
    """

    def __init__(
        self,
        env: "Environment",
        capacity: float = float("inf"),
        name: str | None = None,
    ) -> None:
        if capacity <= 0:
            raise SimulationError(f"capacity must be > 0, got {capacity!r}")
        self.env = env
        self.capacity = capacity
        self.name = name
        self.items: List[Any] = []
        self._put_queue: List[StorePut] = []
        self._get_queue: List[StoreGet] = []
        #: number of items that have passed through the store (diagnostics)
        self.total_puts = 0

    def put(self, item: Any) -> StorePut:
        """Add ``item`` to the store (event succeeds when space is available)."""
        return StorePut(self, item)

    def get(self, filter_fn: Callable[[Any], bool] | None = None) -> StoreGet:
        """Retrieve the oldest item (optionally the oldest matching ``filter_fn``)."""
        return StoreGet(self, filter_fn)

    @property
    def level(self) -> int:
        """Number of items currently stored."""
        return len(self.items)

    @property
    def is_full(self) -> bool:
        return len(self.items) >= self.capacity

    @property
    def is_empty(self) -> bool:
        return not self.items

    # -- internals ------------------------------------------------------------
    def _trigger(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            # Complete puts while there is room.
            while self._put_queue and len(self.items) < self.capacity:
                put = self._put_queue.pop(0)
                self.items.append(put.item)
                self.total_puts += 1
                put.succeed()
                progressed = True
            # Complete gets while there are (matching) items.
            pending_gets: List[StoreGet] = []
            while self._get_queue:
                get = self._get_queue.pop(0)
                index = self._find(get.filter_fn)
                if index is None:
                    pending_gets.append(get)
                    continue
                item = self.items.pop(index)
                get.succeed(item)
                progressed = True
            self._get_queue = pending_gets

    def _find(self, filter_fn: Callable[[Any], bool] | None) -> Optional[int]:
        if filter_fn is None:
            return 0 if self.items else None
        for index, item in enumerate(self.items):
            if filter_fn(item):
                return index
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = f" {self.name!r}" if self.name else ""
        return f"<Store{label} level={len(self.items)}/{self.capacity}>"
