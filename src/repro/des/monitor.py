"""Statistics collectors for simulation output.

Three collectors cover the needs of the wormhole simulator:

* :class:`Tally` — sample statistics of observations (message latencies);
* :class:`TimeWeightedValue` — time-weighted statistics of a piecewise
  constant signal (queue lengths, channel occupancy);
* :class:`Counter` — a plain event counter with rate helpers.

All collectors are NumPy-free in the hot path (simple running sums) so that
recording one observation costs a handful of float operations; summary
statistics (mean, variance, percentiles, confidence intervals) are computed
on demand.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.des.exceptions import SimulationError


class Tally:
    """Running sample statistics of a stream of observations.

    Parameters
    ----------
    name:
        Label used in reports.
    keep_samples:
        When True (default) the raw observations are retained so that
        percentiles and exact confidence intervals can be computed.  The
        simulator keeps latency samples; high-volume internal tallies can
        switch this off to save memory.
    """

    def __init__(self, name: str = "tally", keep_samples: bool = True) -> None:
        self.name = name
        self.keep_samples = keep_samples
        self._count = 0
        self._sum = 0.0
        self._sum_sq = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._samples: List[float] = []

    # -- recording ----------------------------------------------------------
    def record(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self._count += 1
        self._sum += value
        self._sum_sq += value * value
        self._min = min(self._min, value)
        self._max = max(self._max, value)
        if self.keep_samples:
            self._samples.append(value)

    def extend(self, values: Sequence[float]) -> None:
        """Record a batch of observations."""
        for value in values:
            self.record(value)

    def reset(self) -> None:
        """Forget all observations (used at the end of the warm-up phase)."""
        self._count = 0
        self._sum = 0.0
        self._sum_sq = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._samples = []

    # -- statistics ----------------------------------------------------------
    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        if self._count == 0:
            raise SimulationError(f"tally {self.name!r} has no observations")
        return self._sum / self._count

    @property
    def variance(self) -> float:
        """Unbiased sample variance (zero for fewer than two observations)."""
        if self._count < 2:
            return 0.0
        mean = self._sum / self._count
        # Clamp tiny negative values produced by floating point cancellation.
        var = (self._sum_sq - self._count * mean * mean) / (self._count - 1)
        return max(var, 0.0)

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    @property
    def minimum(self) -> float:
        if self._count == 0:
            raise SimulationError(f"tally {self.name!r} has no observations")
        return self._min

    @property
    def maximum(self) -> float:
        if self._count == 0:
            raise SimulationError(f"tally {self.name!r} has no observations")
        return self._max

    @property
    def samples(self) -> List[float]:
        if not self.keep_samples:
            raise SimulationError(f"tally {self.name!r} does not keep samples")
        return list(self._samples)

    def percentile(self, q: float) -> float:
        """Return the ``q``-th percentile (0 <= q <= 100) of the kept samples."""
        if not 0.0 <= q <= 100.0:
            raise SimulationError(f"percentile must be in [0, 100], got {q!r}")
        samples = sorted(self.samples)
        if not samples:
            raise SimulationError(f"tally {self.name!r} has no observations")
        if len(samples) == 1:
            return samples[0]
        position = (len(samples) - 1) * q / 100.0
        lower = int(math.floor(position))
        upper = int(math.ceil(position))
        if lower == upper:
            return samples[lower]
        weight = position - lower
        return samples[lower] * (1 - weight) + samples[upper] * weight

    def confidence_interval(self, confidence: float = 0.95) -> Tuple[float, float]:
        """Normal-approximation confidence interval of the mean.

        A normal approximation is adequate here because latency statistics are
        gathered over tens of thousands of messages.
        """
        if not 0.0 < confidence < 1.0:
            raise SimulationError(f"confidence must be in (0, 1), got {confidence!r}")
        if self._count == 0:
            raise SimulationError(f"tally {self.name!r} has no observations")
        if self._count == 1:
            return (self.mean, self.mean)
        z = _normal_ppf(0.5 + confidence / 2.0)
        half_width = z * self.std / math.sqrt(self._count)
        return (self.mean - half_width, self.mean + half_width)

    def summary(self) -> dict:
        """Return a JSON-friendly summary of the tally."""
        if self._count == 0:
            return {"name": self.name, "count": 0}
        return {
            "name": self.name,
            "count": self._count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self._count == 0:
            return f"<Tally {self.name!r} empty>"
        return f"<Tally {self.name!r} n={self._count} mean={self.mean:.4g}>"


class TimeWeightedValue:
    """Time-weighted statistics of a piecewise-constant signal.

    Typical uses: number of busy channels, queue length at a concentrator.
    The collector integrates the signal over time so that, e.g., the mean is
    the *time*-average rather than the per-change average.
    """

    def __init__(self, env, initial: float = 0.0, name: str = "signal") -> None:
        self.env = env
        self.name = name
        self._value = float(initial)
        self._last_change = env.now
        self._start_time = env.now
        self._area = 0.0
        self._max = float(initial)
        self._min = float(initial)

    @property
    def value(self) -> float:
        """Current value of the signal."""
        return self._value

    def set(self, value: float) -> None:
        """Change the signal to ``value`` at the current simulation time."""
        now = self.env.now
        self._area += self._value * (now - self._last_change)
        self._last_change = now
        self._value = float(value)
        self._max = max(self._max, self._value)
        self._min = min(self._min, self._value)

    def increment(self, amount: float = 1.0) -> None:
        self.set(self._value + amount)

    def decrement(self, amount: float = 1.0) -> None:
        self.set(self._value - amount)

    def reset(self, value: float | None = None) -> None:
        """Restart integration at the current time (end of warm-up)."""
        if value is not None:
            self._value = float(value)
        self._last_change = self.env.now
        self._start_time = self.env.now
        self._area = 0.0
        self._max = self._value
        self._min = self._value

    @property
    def elapsed(self) -> float:
        return self.env.now - self._start_time

    @property
    def time_average(self) -> float:
        """Time-weighted mean of the signal since the last reset."""
        elapsed = self.env.now - self._start_time
        if elapsed <= 0:
            return self._value
        area = self._area + self._value * (self.env.now - self._last_change)
        return area / elapsed

    @property
    def maximum(self) -> float:
        return self._max

    @property
    def minimum(self) -> float:
        return self._min

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TimeWeightedValue {self.name!r} value={self._value:.4g}>"


class Counter:
    """A named event counter with throughput helpers."""

    def __init__(self, env, name: str = "counter") -> None:
        self.env = env
        self.name = name
        self._count = 0
        self._start_time = env.now

    def increment(self, amount: int = 1) -> None:
        if amount < 0:
            raise SimulationError(f"cannot increment by a negative amount ({amount})")
        self._count += amount

    def reset(self) -> None:
        """Zero the counter and restart the rate clock (end of warm-up)."""
        self._count = 0
        self._start_time = self.env.now

    @property
    def count(self) -> int:
        return self._count

    @property
    def rate(self) -> float:
        """Events per time unit since the last reset (0 if no time elapsed)."""
        elapsed = self.env.now - self._start_time
        if elapsed <= 0:
            return 0.0
        return self._count / elapsed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.name!r} count={self._count}>"


def _normal_ppf(p: float) -> float:
    """Inverse CDF of the standard normal (Acklam's rational approximation).

    Implemented locally so the DES kernel has no SciPy dependency; accurate to
    ~1e-9 which is far below the statistical noise of any simulation run.
    """
    if not 0.0 < p < 1.0:
        raise SimulationError(f"probability must be in (0, 1), got {p!r}")
    # Coefficients for the rational approximations.
    a = (-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
         1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00)
    b = (-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
         6.680131188771972e01, -1.328068155288572e01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
         -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
         3.754408661907416e00)
    p_low = 0.02425
    p_high = 1 - p_low
    if p < p_low:
        q = math.sqrt(-2 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
        )
    if p <= p_high:
        q = p - 0.5
        r = q * q
        return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
            ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1
        )
    q = math.sqrt(-2 * math.log(1 - p))
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
        (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1
    )
