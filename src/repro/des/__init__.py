"""A small generator-based discrete-event simulation (DES) kernel.

The validation study in the paper relies on a discrete-event wormhole
simulator.  No DES library is available offline, so this subpackage provides
a self-contained kernel in the spirit of SimPy:

* :class:`~repro.des.core.Environment` drives simulated time and the event
  queue;
* processes are plain Python generators that ``yield`` events
  (:class:`~repro.des.events.Timeout`, resource requests, other processes);
* :class:`~repro.des.resources.Resource`, :class:`~repro.des.resources.PriorityResource`
  and :class:`~repro.des.resources.Store` model contention points (channels,
  buffers, queues);
* :mod:`repro.des.monitor` provides time-weighted and tally statistics;
* :mod:`repro.des.calendar` provides the bucketed calendar-queue scheduler
  the environment migrates to on dense event queues (pop order identical to
  the heap; force either with ``REPRO_DES_SCHEDULER``).

The kernel is deliberately deterministic: events scheduled for the same time
fire in FIFO order of scheduling, which makes simulation results reproducible
for a fixed seed — under either scheduler.
"""

from repro.des.exceptions import Interrupt, QueueEmpty, SimulationError, StopSimulation
from repro.des.events import Event, Timeout, Process, AllOf, AnyOf, ConditionValue
from repro.des.calendar import CalendarQueue
from repro.des.ring import CalendarRing, FifoRing
from repro.des.core import Environment
from repro.des.resources import (
    Resource,
    PriorityResource,
    Request,
    PriorityRequest,
    Release,
    Store,
    StorePut,
    StoreGet,
)
from repro.des.monitor import TimeWeightedValue, Tally, Counter

__all__ = [
    "CalendarQueue",
    "CalendarRing",
    "FifoRing",
    "Environment",
    "Event",
    "QueueEmpty",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "ConditionValue",
    "Interrupt",
    "SimulationError",
    "StopSimulation",
    "Resource",
    "PriorityResource",
    "Request",
    "PriorityRequest",
    "Release",
    "Store",
    "StorePut",
    "StoreGet",
    "TimeWeightedValue",
    "Tally",
    "Counter",
]
