"""A calendar ring that pops whole same-timestamp cohorts at once.

:class:`~repro.des.calendar.CalendarQueue` buckets time but still hands
events back one at a time, so a vectorized simulation kernel that wants to
process the *event frontier* — every event sharing the earliest timestamp —
with array operations would pay a Python-level pop per element anyway.
:class:`CalendarRing` is the batch-oriented sibling:

* future buckets are plain unsorted lists (a push is one ``list.append``
  instead of a ``heappush``);
* the earliest bucket is *promoted* to a sorted head lazily, exactly once,
  when the clock reaches it (NumPy ``lexsort`` over parallel
  ``(time, priority, eid)`` arrays for dense buckets, timsort for small
  ones);
* :meth:`pop_cohort` slices the leading equal-time run off the head in one
  step, and :meth:`push_batch` bins whole arrays of future events with one
  vectorized ``floor`` — the two batch entry points the vectorized kernel
  lives on;
* bucket width is *dynamic*: every :data:`RESIZE_CHECK_INTERVAL` pushes the
  ring compares its mean bucket occupancy against
  :data:`~repro.des.calendar.TARGET_OCCUPANCY` and rebuilds itself with a
  recomputed width when event-time density has drifted (R. Brown,
  CACM 1988).  The new width comes from
  :func:`~repro.des.calendar.spacing_width` over a sample of the earliest
  entries — the local spacing at the pop frontier, which for a simulation's
  skewed schedule (a dense in-flight knot at the clock, sparse far-future
  arrivals) differs from the global mean by orders of magnitude.

**Pop order is bit-identical to a flat heap** over the same
``(time, priority, eid)`` keys: slot assignment is monotone in time, the
head bucket is fully sorted before anything is taken from it, and an
equal-time run can never span buckets (equal times share a ``floor``).
Entries pushed *behind* the promoted head (time at or before the head
bucket's range) are insorted into the unconsumed tail of the head, so even
adversarial schedules — pushed while a cohort is being drained — pop in
heap order.  ``tests/des/test_ring.py`` drives the ring and a flat heap
through random interleaved schedules and compares element for element.
"""

from __future__ import annotations

from bisect import insort, insort_right
from heapq import heappop, heappush
from math import floor, inf
from operator import itemgetter
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.des.calendar import (
    HEAD_SAMPLE,
    MIN_WIDTH,
    RESIZE_CHECK_INTERVAL,
    RESIZE_HYSTERESIS,
    RESIZE_MIN_ENTRIES,
    TARGET_OCCUPANCY,
    spacing_width,
)
from repro.des.exceptions import SimulationError

__all__ = ["CalendarRing", "FifoRing"]

#: One scheduled event — heap-compatible key prefix, arbitrary payload.
Entry = Tuple[float, int, int, Any]

#: A :class:`FifoRing` entry — bare ``(time, payload)``; order within an
#: equal-time run is the push order, carried by position instead of an eid.
FifoEntry = Tuple[float, Any]

#: Key for the stability-preserving sorts/insorts of :class:`FifoRing` —
#: comparing whole 2-tuples would tie-break on the payload.
_TIME_KEY = itemgetter(0)

#: Bucket size above which promotion sorts via ``np.lexsort`` on parallel
#: key arrays instead of timsort on tuples.  Below this, building the
#: arrays costs more than the sort saves.
LEXSORT_MIN = 1024


def _lexsorted(bucket: List[Entry]) -> List[Entry]:
    """Sort a dense bucket by ``(time, priority, eid)`` via NumPy lexsort."""
    times = np.fromiter((entry[0] for entry in bucket), dtype=np.float64, count=len(bucket))
    priorities = np.fromiter((entry[1] for entry in bucket), dtype=np.int64, count=len(bucket))
    eids = np.fromiter((entry[2] for entry in bucket), dtype=np.int64, count=len(bucket))
    # Least-significant key first; eids are unique so the order is total.
    order = np.lexsort((eids, priorities, times))
    return [bucket[index] for index in order]


class CalendarRing:
    """Bucketed event queue with cohort pops and dynamic bucket width.

    Parameters
    ----------
    width:
        Initial bucket width in simulation-time units.  The ring resizes
        itself as densities drift, so this only needs to be in the right
        galaxy; pass an estimate of ``mean event spacing * occupancy`` when
        known.
    occupancy:
        Mean entries per bucket the dynamic resize steers towards.
    """

    __slots__ = (
        "width",
        "_inv_width",
        "_buckets",
        "_slots",
        "_count",
        "_head",
        "_head_pos",
        "_head_slot",
        "_occupancy",
        "_ops",
        "_resizes",
    )

    def __init__(self, width: float = 1.0, occupancy: int = TARGET_OCCUPANCY) -> None:
        if not width > 0:
            raise SimulationError(f"bucket width must be > 0, got {width!r}")
        self.width = float(width)
        self._inv_width = 1.0 / self.width
        #: bucket index -> unsorted entry list (present only while non-empty)
        self._buckets: dict = {}
        #: heap of occupied bucket indexes (never contains the head slot)
        self._slots: List[int] = []
        self._count = 0
        #: promoted (sorted) earliest bucket and the consume cursor into it
        self._head: Optional[List[Entry]] = None
        self._head_pos = 0
        self._head_slot: Optional[int] = None
        self._occupancy = occupancy
        self._ops = 0
        self._resizes = 0

    # ------------------------------------------------------------------ push
    def push(self, time: float, priority: int, eid: int, payload: Any) -> None:
        """Insert one entry (same key layout as the Environment heap)."""
        entry = (time, priority, eid, payload)
        head_slot = self._head_slot
        slot = floor(time * self._inv_width)
        if head_slot is not None and slot <= head_slot:
            # Lands in (or before) the bucket currently being drained:
            # insort into its unconsumed tail so pop order stays heap order.
            insort(self._head, entry, self._head_pos)
        else:
            bucket = self._buckets.get(slot)
            if bucket is None:
                self._buckets[slot] = [entry]
                heappush(self._slots, slot)
            else:
                bucket.append(entry)
        self._count += 1
        self._ops += 1
        if self._ops >= RESIZE_CHECK_INTERVAL:
            self._ops = 0
            self._maybe_resize()

    def push_batch(
        self,
        times: Sequence[float],
        priority: int,
        first_eid: int,
        payloads: Sequence[Any],
    ) -> None:
        """Insert many entries with consecutive eids in one vectorized pass.

        ``times`` may be any array-like; slot indexes are computed with one
        vectorized ``floor`` instead of one Python ``floor`` per entry.
        Entries are appended in sequence order, so ``first_eid + i`` keeps
        the usual FIFO tie-break for equal ``(time, priority)`` keys.
        """
        times_arr = np.asarray(times, dtype=np.float64)
        if times_arr.ndim != 1:
            raise SimulationError("push_batch expects a 1-d array of times")
        slots = np.floor(times_arr * self._inv_width).astype(np.int64)
        buckets = self._buckets
        slot_heap = self._slots
        head_slot = self._head_slot
        time_list = times_arr.tolist()
        slot_list = slots.tolist()
        for index, slot in enumerate(slot_list):
            entry = (time_list[index], priority, first_eid + index, payloads[index])
            if head_slot is not None and slot <= head_slot:
                insort(self._head, entry, self._head_pos)
                continue
            bucket = buckets.get(slot)
            if bucket is None:
                buckets[slot] = [entry]
                heappush(slot_heap, slot)
            else:
                bucket.append(entry)
        self._count += len(slot_list)
        self._ops += len(slot_list)
        if self._ops >= RESIZE_CHECK_INTERVAL:
            self._ops = 0
            self._maybe_resize()

    # ------------------------------------------------------------------- pop
    def _promote(self) -> bool:
        """Sort the earliest future bucket into the head.  False if empty."""
        slots = self._slots
        if not slots:
            return False
        slot = heappop(slots)
        bucket = self._buckets.pop(slot)
        if len(bucket) >= LEXSORT_MIN:
            bucket = _lexsorted(bucket)
        else:
            bucket.sort()
        self._head = bucket
        self._head_pos = 0
        self._head_slot = slot
        return True

    def _retire_head(self) -> None:
        self._head = None
        self._head_pos = 0
        self._head_slot = None

    def pop(self) -> Entry:
        """Remove and return the earliest entry (heap-identical order).

        Raises
        ------
        IndexError
            If the ring is empty (mirrors ``heapq.heappop``).
        """
        head = self._head
        if head is None:
            if not self._promote():
                raise IndexError("pop from an empty CalendarRing")
            head = self._head
        pos = self._head_pos
        entry = head[pos]
        pos += 1
        if pos >= len(head):
            self._retire_head()
        else:
            self._head_pos = pos
        self._count -= 1
        return entry

    def pop_cohort(self) -> Optional[List[Entry]]:
        """Remove and return every entry sharing the earliest timestamp.

        Returns the leading equal-time run as a list already ordered by
        ``(priority, eid)``, or ``None`` when the ring is empty.  Equal
        times always share a bucket, so the cohort never spans one.
        """
        head = self._head
        if head is None:
            if not self._promote():
                return None
            head = self._head
        pos = self._head_pos
        time = head[pos][0]
        end = pos + 1
        size = len(head)
        while end < size and head[end][0] == time:
            end += 1
        cohort = head[pos:end]
        if end >= size:
            self._retire_head()
        else:
            self._head_pos = end
        self._count -= len(cohort)
        return cohort

    def peek_time(self) -> float:
        """Time of the earliest entry, or ``inf`` when empty."""
        if self._head is not None:
            return self._head[self._head_pos][0]
        if not self._slots:
            return inf
        # Future buckets are unsorted; scan the earliest one.
        return min(entry[0] for entry in self._buckets[self._slots[0]])

    def __len__(self) -> int:
        return self._count

    # ---------------------------------------------------------------- resize
    def _maybe_resize(self) -> None:
        """Rebuild with a recomputed width when head-spacing has drifted.

        Unlike ``CalendarQueue``, the ring does not pre-filter on mean
        occupancy: for the skewed schedules it serves, the global mean sits
        comfortably on target while the head bucket holds an order of
        magnitude more than :data:`TARGET_OCCUPANCY` (dense in-flight knot,
        sparse far-future arrivals).  The spacing estimate itself is the
        trigger; the width hysteresis band keeps it from thrashing.
        """
        count = self._count
        if count < RESIZE_MIN_ENTRIES:
            return
        entries: List[Entry] = []
        if self._head is not None:
            entries.extend(self._head[self._head_pos :])
        for bucket in self._buckets.values():
            entries.extend(bucket)
        # Size from the spacing of the earliest entries — pops happen there,
        # and the global span is dominated by far-future arrivals whose
        # density says nothing about the head (see spacing_width).
        times = np.fromiter(
            (entry[0] for entry in entries), dtype=np.float64, count=len(entries)
        )
        sample = len(entries)
        if sample > HEAD_SAMPLE:
            times = np.partition(times, HEAD_SAMPLE - 1)[:HEAD_SAMPLE]
        width = spacing_width(np.unique(times).tolist(), self._occupancy)
        if width is None:
            return
        if self.width / RESIZE_HYSTERESIS <= width <= self.width * RESIZE_HYSTERESIS:
            # The recomputed width lands near the current one: the skew is
            # bucket clustering, not stale width.  Rebuilding would thrash.
            return
        self.width = width
        inv_width = self._inv_width = 1.0 / width
        buckets_by_slot: dict = {}
        for entry in entries:
            slot = floor(entry[0] * inv_width)
            bucket = buckets_by_slot.get(slot)
            if bucket is None:
                buckets_by_slot[slot] = [entry]
            else:
                bucket.append(entry)
        self._buckets = buckets_by_slot
        # A sorted list satisfies the heap invariant.
        self._slots = sorted(buckets_by_slot)
        self._retire_head()
        self._resizes += 1

    # ------------------------------------------------------------ diagnostics
    @property
    def occupied_buckets(self) -> int:
        """Number of non-empty buckets, counting a live head (diagnostic)."""
        return len(self._buckets) + (1 if self._head is not None else 0)

    @property
    def resizes(self) -> int:
        """How many occupancy-triggered rebuilds have happened (diagnostic)."""
        return self._resizes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CalendarRing(width={self.width:g}, entries={self._count}, "
            f"buckets={self.occupied_buckets}, resizes={self._resizes})"
        )


class FifoRing(CalendarRing):
    """A calendar ring whose tie-break *is* the push order.

    :class:`CalendarRing` carries an explicit ``(priority, eid)`` key pair
    so arbitrary heap schedules can be replayed exactly.  A kernel that
    only ever pushes one priority and allocates eids in push order is
    paying for that generality on every event: a 4-tuple build, an eid
    counter increment, and wider comparisons.  ``FifoRing`` stores bare
    ``(time, payload)`` pairs and recovers the identical order from
    *stability*: bucket appends happen in push order, promotion sorts with
    a stable time-only key, and pushes behind the promoted head
    ``insort_right`` — after any equal-time entries already there, exactly
    where a larger eid would land.  Equal times share a ``floor`` so a run
    never spans buckets, and the resize rebuild copies entries in
    head-then-bucket order, preserving intra-time order.  Pop order is
    therefore bit-identical to a flat heap over ``(time, seq)`` keys
    (``tests/des/test_ring.py`` pins this against random interleavings).

    :meth:`pop_run` replaces ``pop_cohort``: it returns the head list with
    the run's index range instead of slicing, and guarantees entries the
    caller pushes *while iterating the run* land at indices at or past the
    run's end — the consume cursor is advanced before returning — so the
    range stays valid without a defensive copy.
    """

    __slots__ = ()

    # ------------------------------------------------------------------ push
    def push(self, time: float, payload: Any) -> None:  # type: ignore[override]
        """Insert one entry; equal times pop in push order."""
        entry = (time, payload)
        head_slot = self._head_slot
        slot = floor(time * self._inv_width)
        if head_slot is not None and slot <= head_slot:
            # After any equal-time entries in the unconsumed tail: the
            # right bisection is what keeps FIFO across the head boundary.
            insort_right(self._head, entry, self._head_pos, key=_TIME_KEY)
        else:
            bucket = self._buckets.get(slot)
            if bucket is None:
                self._buckets[slot] = [entry]
                heappush(self._slots, slot)
            else:
                bucket.append(entry)
        self._count += 1
        self._ops += 1
        if self._ops >= RESIZE_CHECK_INTERVAL:
            self._ops = 0
            self._maybe_resize()

    def push_batch(  # type: ignore[override]
        self, times: Sequence[float], payloads: Sequence[Any]
    ) -> None:
        """Insert many entries in sequence order with one vectorized binning."""
        times_arr = np.asarray(times, dtype=np.float64)
        if times_arr.ndim != 1:
            raise SimulationError("push_batch expects a 1-d array of times")
        slots = np.floor(times_arr * self._inv_width).astype(np.int64)
        buckets = self._buckets
        slot_heap = self._slots
        head_slot = self._head_slot
        time_list = times_arr.tolist()
        slot_list = slots.tolist()
        for index, slot in enumerate(slot_list):
            entry = (time_list[index], payloads[index])
            if head_slot is not None and slot <= head_slot:
                insort_right(self._head, entry, self._head_pos, key=_TIME_KEY)
                continue
            bucket = buckets.get(slot)
            if bucket is None:
                buckets[slot] = [entry]
                heappush(slot_heap, slot)
            else:
                bucket.append(entry)
        self._count += len(slot_list)
        self._ops += len(slot_list)
        if self._ops >= RESIZE_CHECK_INTERVAL:
            self._ops = 0
            self._maybe_resize()

    # ------------------------------------------------------------------- pop
    def _promote(self) -> bool:
        """Stable-sort the earliest future bucket into the head."""
        slots = self._slots
        if not slots:
            return False
        slot = heappop(slots)
        bucket = self._buckets.pop(slot)
        if len(bucket) >= LEXSORT_MIN:
            times = np.fromiter(
                (entry[0] for entry in bucket), dtype=np.float64, count=len(bucket)
            )
            order = np.argsort(times, kind="stable")
            bucket = [bucket[index] for index in order]
        else:
            # list.sort is stable, so equal times keep append (push) order.
            bucket.sort(key=_TIME_KEY)
        self._head = bucket
        self._head_pos = 0
        self._head_slot = slot
        return True

    def pop(self) -> FifoEntry:  # type: ignore[override]
        """Remove and return the earliest entry (FIFO within equal times)."""
        return super().pop()  # promotion/insort already enforce the order

    def pop_run(self) -> Optional[Tuple[float, List[FifoEntry], int, int]]:
        """Remove the earliest equal-time run; return it as an index range.

        Returns ``(time, head, start, end)`` where ``head[start:end]`` is
        the run in push order, or ``None`` when the ring is empty.  The
        consume cursor moves past ``end`` *before* returning, so entries
        pushed while the caller iterates the run insort at indices at or
        past ``end`` (or land in future buckets) and never shift the run.
        """
        head = self._head
        if head is None:
            if not self._promote():
                return None
            head = self._head
        start = self._head_pos
        time = head[start][0]
        end = start + 1
        size = len(head)
        while end < size and head[end][0] == time:
            end += 1
        if end >= size:
            self._retire_head()
        else:
            self._head_pos = end
        self._count -= end - start
        return time, head, start, end

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FifoRing(width={self.width:g}, entries={self._count}, "
            f"buckets={self.occupied_buckets}, resizes={self._resizes})"
        )
