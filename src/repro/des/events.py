"""Event and process primitives of the DES kernel.

An :class:`Event` is a one-shot object that can *succeed* or *fail* with a
value; callbacks registered on the event run when the environment processes
it.  A :class:`Process` wraps a generator: every value the generator yields
must be an event, and the process resumes when that event is processed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, Generator, Iterable, List, Optional

from repro.des.exceptions import Interrupt, SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.des.core import Environment


PENDING = object()


class Event:
    """A one-shot occurrence in simulated time.

    Events move through three stages: *untriggered* (just created),
    *triggered* (scheduled in the event queue with a value) and *processed*
    (callbacks have run).  ``succeed``/``fail`` trigger the event.

    Events are slotted: a simulation run allocates one event per channel
    grant and per header-flit timeout, so the per-instance ``__dict__`` is
    dropped to keep the hot path allocation-light.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        self._defused = False

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value and sits in (or has left) the queue."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        """The value the event succeeded or failed with."""
        if self._value is PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception propagates into every process waiting on this event.
        If nothing waits on a failed event the environment re-raises it at the
        end of the step (unless :meth:`defused` was called).
        """
        if not isinstance(exception, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exception!r}")
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another event (callback helper)."""
        if self.triggered:
            return
        self._ok = event._ok
        self._value = event._value
        self.env.schedule(self)

    def defused(self) -> None:
        """Mark a failed event as handled so the kernel does not re-raise it."""
        self._defused = True

    # -- composition ------------------------------------------------------
    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.env, [self, other])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self.processed else ("triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after its creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Timeout delay={self.delay}>"


class Initialize(Event):
    """Internal event used to start a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self.callbacks.append(process._resume)
        self._ok = True
        self._value = None
        env.schedule(self, priority=Environment_URGENT)


# Priority constants shared with the core module (lower value = earlier).
Environment_URGENT = 0
Environment_NORMAL = 1


class Process(Event):
    """A running process.

    A process is itself an event: it succeeds with the generator's return
    value (or fails with its unhandled exception), so processes can wait for
    each other simply by yielding them.
    """

    __slots__ = ("_generator", "_target")

    def __init__(self, env: "Environment", generator: Generator[Event, Any, Any]) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        Initialize(env, self)

    @property
    def target(self) -> Optional[Event]:
        """The event this process currently waits for (None when finished)."""
        return self._target

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current simulation time."""
        if not self.is_alive:
            raise SimulationError("cannot interrupt a finished process")
        if self._target is None:
            raise SimulationError("cannot interrupt a process before it starts")
        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        interrupt_event.callbacks.append(self._resume)
        self.env.schedule(interrupt_event, priority=Environment_URGENT)

    # -- kernel machinery ---------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        self.env._active_process = self
        while True:
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    event._defused = True
                    exc = event._value
                    next_event = self._generator.throw(exc)
            except StopIteration as stop:
                self._target = None
                self._ok = True
                self._value = stop.value
                self.env.schedule(self)
                break
            except BaseException as exc:  # noqa: BLE001 - propagate via event
                self._target = None
                self._ok = False
                self._value = exc
                self.env.schedule(self)
                break

            if not isinstance(next_event, Event):
                error = SimulationError(
                    f"process yielded a non-event: {next_event!r}"
                )
                self._target = None
                self._ok = False
                self._value = error
                self.env.schedule(self)
                break

            if next_event.callbacks is not None:
                # Event not yet processed: register ourselves and wait.
                next_event.callbacks.append(self._resume)
                self._target = next_event
                break
            # Event already processed: continue immediately with its value.
            event = next_event

        self.env._active_process = None


class ConditionValue:
    """Ordered mapping of the events that triggered a condition to their values."""

    __slots__ = ("events",)

    def __init__(self, events: Iterable[Event]) -> None:
        self.events: List[Event] = list(events)

    def __contains__(self, event: Event) -> bool:
        return event in self.events

    def __getitem__(self, event: Event) -> Any:
        if event not in self.events:
            raise KeyError(event)
        return event._value

    def __len__(self) -> int:
        return len(self.events)

    def keys(self) -> List[Event]:
        return list(self.events)

    def values(self) -> List[Any]:
        return [event._value for event in self.events]

    def items(self) -> List[tuple]:
        return [(event, event._value) for event in self.events]

    def todict(self) -> Dict[Event, Any]:
        return dict(self.items())

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ConditionValue):
            return self.todict() == other.todict()
        if isinstance(other, dict):
            return self.todict() == other
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ConditionValue({self.todict()!r})"


class Condition(Event):
    """Base class for composite events (:class:`AllOf` / :class:`AnyOf`)."""

    __slots__ = ("_events", "_count")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        self._count = 0
        for event in self._events:
            if event.env is not env:
                raise SimulationError("cannot mix events from different environments")
        if not self._events:
            self.succeed(ConditionValue([]))
            return
        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _evaluate(self, count: int) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        self._count += 1
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        elif self._evaluate(self._count):
            self.succeed(ConditionValue([e for e in self._events if e.triggered]))


class AllOf(Condition):
    """Succeeds once *all* component events have succeeded."""

    __slots__ = ()

    def _evaluate(self, count: int) -> bool:
        return count == len(self._events)


class AnyOf(Condition):
    """Succeeds as soon as *any* component event has succeeded."""

    __slots__ = ()

    def _evaluate(self, count: int) -> bool:
        return count >= 1
