"""Exception types used by the DES kernel."""

from __future__ import annotations

from typing import Any


class SimulationError(RuntimeError):
    """Raised when the kernel is used incorrectly (e.g. yielding a non-event)."""


class QueueEmpty(SimulationError):
    """Raised by :meth:`Environment.step` when no event is scheduled.

    A subclass of :class:`SimulationError` so existing callers keep working;
    the run loop catches it precisely to tell "queue drained" apart from
    errors raised by user code.
    """


class StopSimulation(Exception):
    """Raised internally to stop :meth:`Environment.run` at an ``until`` event."""

    def __init__(self, value: Any = None) -> None:
        super().__init__(value)
        self.value = value


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called.

    The ``cause`` attribute carries the value passed to ``interrupt`` so the
    interrupted process can decide how to react (the wormhole simulator uses
    interrupts to model message drops during the drain phase).
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)

    @property
    def cause(self) -> Any:
        return self.args[0]
