"""Derived structural properties of m-port n-trees and multi-cluster systems.

These functions answer the questions the paper answers in Section 2 — how
big is the network, how far apart are nodes, does the topology really offer
full bisection bandwidth — and are used both by the test suite (to cross
check the closed-form expressions of the analytical model against brute-force
enumeration) and by the design-space exploration example.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict

from repro.topology.fat_tree import MPortNTree
from repro.topology.multicluster import MultiClusterSystem
from repro.utils.validation import ValidationError


def link_count(tree: MPortNTree) -> int:
    """Number of physical (bidirectional) links of the tree.

    Counted by enumeration; equals ``n * N`` (each of the ``n`` levels of the
    tree — counting the node-switch level — carries exactly ``N`` links).
    """
    return sum(1 for channel in tree.channels()) // 2


def channel_count(tree: MPortNTree) -> int:
    """Number of directed channels (twice the link count)."""
    return sum(1 for channel in tree.channels())


def diameter(tree: MPortNTree) -> int:
    """Maximum link distance between any two distinct nodes (``2 n``)."""
    return 2 * tree.n


def mean_internode_distance(tree: MPortNTree) -> float:
    """Average link distance between distinct node pairs.

    This is the quantity Eq. (8)/(9) of the paper expresses in closed form;
    here it is computed from the NCA structure directly so the model can be
    validated against it.
    """
    total_nodes = tree.num_nodes
    if total_nodes < 2:
        raise ValidationError("mean distance needs at least two nodes")
    k = tree.k
    total = 0
    # Destinations at NCA distance j from any fixed source (uniform over the
    # other N-1 nodes): k^j - k^(j-1) for j < n and 2k^n - k^(n-1) for j = n.
    for j in range(1, tree.n):
        total += 2 * j * (k**j - k ** (j - 1))
    total += 2 * tree.n * (2 * k**tree.n - k ** (tree.n - 1))
    return total / (total_nodes - 1)


def distance_histogram(tree: MPortNTree, *, exhaustive: bool = False) -> Dict[int, int]:
    """Number of ordered node pairs at each link distance.

    With ``exhaustive=True`` the histogram is computed by enumerating every
    ordered pair (O(N^2); only sensible for small trees in tests); otherwise
    the closed-form pair counts are used.
    """
    histogram: Dict[int, int] = {}
    if exhaustive:
        counts = Counter(
            tree.distance(a, b)
            for a in tree.nodes()
            for b in tree.nodes()
            if a.index != b.index
        )
        return dict(sorted(counts.items()))
    k = tree.k
    total_nodes = tree.num_nodes
    for j in range(1, tree.n):
        pairs = total_nodes * (k**j - k ** (j - 1))
        if pairs:  # k=1 trees have no destinations below the root level
            histogram[2 * j] = pairs
    histogram[2 * tree.n] = total_nodes * (2 * k**tree.n - k ** (tree.n - 1))
    return histogram


def bisection_channels(tree: MPortNTree) -> int:
    """Number of physical links crossing the natural bisection of the tree.

    The m-port n-tree splits into two halves of ``N/2`` nodes each by the
    first digit of the node address (digits ``0..m/2-1`` on one side,
    ``m/2..m-1`` on the other).  Traffic between the halves must cross the
    root level, and every root switch contributes ``m/2`` down-links to each
    half, so the cut width is ``(m/2)^{n-1} * m/2 = N/2`` links — the "full
    bisection bandwidth" property the paper relies on to rule out link
    contention.  The count is obtained by enumeration so tests can verify the
    closed form rather than assume it.
    """
    if tree.n == 1:
        # A single switch: cutting it off from one half severs N/2 node links.
        return tree.num_nodes // 2
    count = 0
    for switch in tree.switches_at_level(tree.root_level):
        for child in tree.down_switches(switch):
            # The child's first prefix digit fixes which half its nodes are in.
            if child.address[0] >= tree.k:
                count += 1
    return count


def is_full_bisection(tree: MPortNTree) -> bool:
    """True when the bisection cut can carry half the nodes' injection load.

    For the m-port n-tree this is always true (cut width ``>= N/2`` links per
    direction); exposed as a function so tests exercise the claim rather than
    assume it.
    """
    return bisection_channels(tree) >= tree.num_nodes // 2


def multicluster_summary(system: MultiClusterSystem) -> Dict[str, object]:
    """A JSON-friendly structural summary of a multi-cluster system."""
    spec = system.spec
    return {
        "name": spec.name or f"N={system.total_nodes}",
        "clusters": system.num_clusters,
        "m": spec.m,
        "total_nodes": system.total_nodes,
        "cluster_sizes": list(system.cluster_sizes),
        "cluster_heights": list(spec.cluster_heights),
        "icn2_height": spec.icn2_height,
        "total_switches": system.total_switches,
        "heterogeneous": not spec.is_homogeneous,
    }
