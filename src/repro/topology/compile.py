"""Topology compilation: dense integer channel ids and flat metadata arrays.

The object-graph topology layer (:class:`~repro.topology.fat_tree.MPortNTree`
and friends) is the *source of truth*: readable, validated, and exactly the
representation the analytical model reasons about.  But it is a poor hot-path
representation — every :class:`Channel` is a frozen dataclass whose hash
walks nested address tuples, so keying per-channel simulation state on
``Channel`` objects costs a rehash per hop per message.

This module compiles that object graph **once** into dense integer ids:

* :class:`CompiledTree` assigns every directed channel of one m-port n-tree
  a dense id (the enumeration order of :meth:`MPortNTree.channels`) and
  emits flat NumPy metadata arrays (endpoint ids, channel kind, node-channel
  flags).  Compiled trees depend only on the shape ``(m, n)`` — channel
  objects carry no tree name — so one compiled tree is shared by every
  same-shape ICN1/ECN1/ICN2 instance via a module-level cache.
* :class:`CompiledSystem` lays the channels of every network of a
  :class:`MultiClusterSystem` into one global id space (one block per
  network, plus one pseudo-channel slot per concentrator and dispatcher
  unit) and emits system-wide metadata arrays.  Compiled systems are cached
  per :class:`MultiClusterSpec`, so a sweep compiles once and every worker
  process compiles at most once.

The simulator's flat-array hot path (:mod:`repro.sim.network`,
:mod:`repro.sim.simulator`) and the compiled route tables
(:mod:`repro.routing.compile`) are both expressed in these ids.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Protocol, Tuple, runtime_checkable

import numpy as np

from repro.topology.fat_tree import (
    Channel,
    ChannelKind,
    FatTreeNode,
    FatTreeSwitch,
    MPortNTree,
    shared_tree,
)
from repro.topology.multicluster import MultiClusterSpec, MultiClusterSystem
from repro.utils.validation import ValidationError

__all__ = [
    "Topology",
    "CompiledTree",
    "CompiledSystem",
    "compile_tree",
    "compile_system",
    "clear_compile_caches",
    "KIND_CODES",
]


@runtime_checkable
class Topology(Protocol):
    """The minimal surface a network must expose to be compilable.

    :class:`MPortNTree` satisfies this structurally; alternative topologies
    (e.g. a torus backend) only need dense node indices and a deterministic
    channel enumeration to plug into the same compilation pass.
    """

    name: str

    @property
    def num_nodes(self) -> int: ...

    @property
    def num_channels(self) -> int: ...

    def channels(self) -> Iterator[Channel]: ...


#: Stable integer code per channel kind (order matches the enum declaration).
KIND_CODES: Dict[ChannelKind, int] = {
    ChannelKind.INJECTION: 0,
    ChannelKind.EJECTION: 1,
    ChannelKind.UP: 2,
    ChannelKind.DOWN: 3,
}


class CompiledTree:
    """One m-port n-tree lowered to dense channel ids and flat arrays.

    Attributes
    ----------
    channels:
        Channel objects in id order (``channels[cid]`` decompiles ``cid``).
    channel_ids:
        The inverse mapping ``Channel -> cid``.
    kind_codes / is_node_channel:
        Per-channel metadata arrays (``KIND_CODES`` values; True on
        injection/ejection channels, whose per-flit time is ``t_cn``).
    source_ids / target_ids:
        Per-channel endpoint ids: processing nodes keep their dense index,
        switch ``s`` becomes ``num_nodes + switch_id`` with switch ids in
        :meth:`MPortNTree.switches` enumeration order.
    """

    __slots__ = (
        "m",
        "n",
        "num_nodes",
        "num_switches",
        "num_channels",
        "channels",
        "channel_ids",
        "kind_codes",
        "is_node_channel",
        "source_ids",
        "target_ids",
    )

    def __init__(self, tree: MPortNTree) -> None:
        self.m = tree.m
        self.n = tree.n
        self.num_nodes = tree.num_nodes
        self.num_switches = tree.num_switches
        switch_ids: Dict[FatTreeSwitch, int] = {
            switch: index for index, switch in enumerate(tree.switches())
        }
        channels: List[Channel] = list(tree.channels())
        if len(channels) != tree.num_channels:
            raise ValidationError(
                f"channel enumeration produced {len(channels)} channels, "
                f"expected {tree.num_channels}"
            )  # pragma: no cover - structural invariant
        self.num_channels = len(channels)
        self.channels = tuple(channels)
        self.channel_ids = {channel: cid for cid, channel in enumerate(channels)}

        def entity_id(entity) -> int:
            if isinstance(entity, FatTreeNode):
                return entity.index
            return self.num_nodes + switch_ids[entity]

        self.kind_codes = np.fromiter(
            (KIND_CODES[channel.kind] for channel in channels),
            dtype=np.uint8,
            count=self.num_channels,
        )
        self.is_node_channel = np.fromiter(
            (channel.kind.is_node_channel for channel in channels),
            dtype=np.bool_,
            count=self.num_channels,
        )
        self.source_ids = np.fromiter(
            (entity_id(channel.source) for channel in channels),
            dtype=np.int32,
            count=self.num_channels,
        )
        self.target_ids = np.fromiter(
            (entity_id(channel.target) for channel in channels),
            dtype=np.int32,
            count=self.num_channels,
        )

    def index_of(self, channel: Channel) -> int:
        """Dense id of ``channel`` (raises for channels of another shape)."""
        try:
            return self.channel_ids[channel]
        except KeyError:
            raise ValidationError(
                f"{channel!r} is not a channel of a {self.m}-port {self.n}-tree"
            ) from None

    def channel_at(self, cid: int) -> Channel:
        """Decompile a dense id back into its :class:`Channel`."""
        if not 0 <= cid < self.num_channels:
            raise ValidationError(
                f"channel id {cid} out of range [0, {self.num_channels})"
            )
        return self.channels[cid]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompiledTree(m={self.m}, n={self.n}, channels={self.num_channels})"
        )


_COMPILED_TREES: Dict[Tuple[int, int], CompiledTree] = {}


def compile_tree(m: int, n: int) -> CompiledTree:
    """The (cached) compiled form of the ``(m, n)`` tree shape."""
    key = (int(m), int(n))
    compiled = _COMPILED_TREES.get(key)
    if compiled is None:
        compiled = _COMPILED_TREES[key] = CompiledTree(shared_tree(m, n))
    return compiled


class CompiledSystem:
    """A :class:`MultiClusterSystem` lowered to one global channel-id space.

    The id space is laid out block by block::

        [cluster0 ICN1][cluster0 ECN1][cluster1 ICN1] ... [ICN2]
        [concentrator slots (C)][dispatcher slots (C)]

    The concentrator/dispatcher units are *pseudo-channels*: they contend
    like a capacity-1 channel with a switch-channel service time, exactly as
    the object-path simulator modelled them with dedicated ``Resource``
    objects.

    Besides the block offsets, the compiled system exposes flat metadata
    over the whole slot space (``is_node_channel_list``, ``pool_index_list``)
    as plain Python lists: the simulator indexes them per hop, and scalar
    indexing of a list is several times faster than scalar indexing of a
    NumPy array (the per-tree NumPy metadata arrays live on
    :class:`CompiledTree`).

    Pool indexing (used by utilisation reporting, mirroring the object
    path's per-network ``ChannelPool`` split): pool ``c`` is cluster ``c``'s
    ICN1, pool ``C + c`` its ECN1, pool ``2C`` the ICN2, and pool ``2C + 1``
    the relay pseudo-pool (reported separately, via per-slot grant counts).
    """

    #: report keys the kernels use for channel-utilisation aggregation, in
    #: pool-layout order (per-cluster pools, ICN2 pool, relay slots); the
    #: zoo facade overrides them with its own labels.
    utilisation_labels = ("ICN1", "ECN1", "ICN2", "concentrators")

    __slots__ = (
        "spec",
        "system",
        "icn1_trees",
        "ecn1_trees",
        "icn2_tree",
        "icn1_offsets",
        "ecn1_offsets",
        "icn2_offset",
        "concentrator_base",
        "dispatcher_base",
        "total_slots",
        "num_pools",
        "is_node_channel_list",
        "pool_index_list",
        "pool_labels",
    )

    def __init__(self, spec: MultiClusterSpec) -> None:
        self.spec = spec
        self.system = MultiClusterSystem(spec)
        clusters = self.system.clusters
        num_clusters = len(clusters)

        self.icn1_trees: Tuple[CompiledTree, ...] = tuple(
            compile_tree(spec.m, cluster.height) for cluster in clusters
        )
        self.ecn1_trees: Tuple[CompiledTree, ...] = self.icn1_trees  # same shapes
        self.icn2_tree = compile_tree(spec.m, spec.icn2_height)

        icn1_offsets: List[int] = []
        ecn1_offsets: List[int] = []
        pool_labels: List[str] = []
        offset = 0
        pool_of_slot: List[int] = []
        node_flag: List[bool] = []

        def add_block(tree: CompiledTree, pool: int) -> int:
            nonlocal offset
            start = offset
            pool_of_slot.extend([pool] * tree.num_channels)
            node_flag.extend(bool(flag) for flag in tree.is_node_channel)
            offset += tree.num_channels
            return start

        for index in range(num_clusters):
            icn1_offsets.append(add_block(self.icn1_trees[index], index))
            pool_labels.append(f"cluster{index}/ICN1")
        for index in range(num_clusters):
            ecn1_offsets.append(add_block(self.ecn1_trees[index], num_clusters + index))
            pool_labels.append(f"cluster{index}/ECN1")
        self.icn2_offset = add_block(self.icn2_tree, 2 * num_clusters)
        pool_labels.append("ICN2")

        relay_pool = 2 * num_clusters + 1
        self.concentrator_base = offset
        pool_of_slot.extend([relay_pool] * num_clusters)
        node_flag.extend([False] * num_clusters)
        offset += num_clusters
        self.dispatcher_base = offset
        pool_of_slot.extend([relay_pool] * num_clusters)
        node_flag.extend([False] * num_clusters)
        offset += num_clusters
        pool_labels.append("relays")

        self.icn1_offsets = tuple(icn1_offsets)
        self.ecn1_offsets = tuple(ecn1_offsets)
        self.total_slots = offset
        # ICN1s + ECN1s + ICN2 + the relay pseudo-pool, so per-pool
        # structures sized by num_pools can be indexed with the pool of
        # *any* slot, relay slots included.
        self.num_pools = 2 * num_clusters + 2
        self.pool_labels = tuple(pool_labels)
        self.pool_index_list = pool_of_slot
        self.is_node_channel_list = node_flag

    # ------------------------------------------------------------- id helpers
    def concentrator_slot(self, cluster_index: int) -> int:
        """Global slot id of cluster ``cluster_index``'s concentrator unit."""
        self.spec._check_cluster(cluster_index)
        return self.concentrator_base + cluster_index

    def dispatcher_slot(self, cluster_index: int) -> int:
        """Global slot id of cluster ``cluster_index``'s dispatcher unit."""
        self.spec._check_cluster(cluster_index)
        return self.dispatcher_base + cluster_index

    def header_times(self, t_cn: float, t_cs: float) -> List[float]:
        """Per-slot header (per-flit) times for one link timing.

        Node channels transfer a flit in ``t_cn`` (Eq. 14), switch channels
        and the relay pseudo-channels in ``t_cs`` (Eq. 15) — the relay time
        the object path passed for concentrator/dispatcher hops.
        """
        return [t_cn if is_node else t_cs for is_node in self.is_node_channel_list]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompiledSystem(C={self.spec.num_clusters}, m={self.spec.m}, "
            f"slots={self.total_slots})"
        )


_COMPILED_SYSTEMS: Dict[MultiClusterSpec, CompiledSystem] = {}

#: Compiled systems are a few MB each; a design-space sweep over many
#: distinct organisations must not pin them all for the process lifetime,
#: so the cache clears wholesale once it exceeds this many specs.
_COMPILED_SYSTEM_CACHE_LIMIT = 64


def compile_system(spec) -> CompiledSystem:
    """The (cached) compiled channel-id space of ``spec``.

    The cache is keyed by the frozen spec itself, so every sweep point, every
    engine and — because the cache is module level — every process-pool
    worker reuses one compilation per organisation.  ``spec`` may be a
    :class:`MultiClusterSpec` or a zoo
    :class:`~repro.topology.zoo.spec.TopologySpec`; zoo members compile to
    the same surface (a single degenerate cluster) through their own
    identity-keyed cache.
    """
    if not isinstance(spec, MultiClusterSpec):
        # Imported lazily: the zoo package builds on this module.
        from repro.topology.zoo.compile import compile_zoo_system

        return compile_zoo_system(spec)
    compiled = _COMPILED_SYSTEMS.get(spec)
    if compiled is None:
        if len(_COMPILED_SYSTEMS) >= _COMPILED_SYSTEM_CACHE_LIMIT:
            _COMPILED_SYSTEMS.clear()
        compiled = _COMPILED_SYSTEMS[spec] = CompiledSystem(spec)
    return compiled


def clear_compile_caches() -> None:
    """Drop all compiled trees/systems, zoo artifacts included."""
    _COMPILED_TREES.clear()
    _COMPILED_SYSTEMS.clear()
    from repro.topology.zoo.compile import clear_zoo_compile_caches

    clear_zoo_compile_caches()
