"""Exports of the topologies to :mod:`networkx` graphs.

The graphs are used for three things:

* structural cross-checks in the test suite (connectivity, degree sequences,
  shortest-path lengths versus the NCA-based closed forms);
* quick visual inspection in notebooks (spring or multipartite layouts);
* as a neutral exchange format for users who want to plug the topology into
  their own tooling.
"""

from __future__ import annotations

from typing import Hashable, Tuple

import networkx as nx

from repro.topology.fat_tree import FatTreeNode, FatTreeSwitch, MPortNTree
from repro.topology.multicluster import MultiClusterSystem


def _node_key(prefix: str, node: FatTreeNode) -> Tuple[str, str, int]:
    return (prefix, "node", node.index)


def _switch_key(prefix: str, switch: FatTreeSwitch) -> Tuple[str, str, int, Tuple[int, ...]]:
    return (prefix, "switch", switch.level, switch.address)


def tree_to_networkx(tree: MPortNTree, *, prefix: str = "", directed: bool = False) -> nx.Graph:
    """Convert one m-port n-tree into a networkx graph.

    Nodes of the graph are tagged with ``kind`` ("node" or "switch") and
    ``level`` attributes; edges with ``kind`` ("node-switch" or
    "switch-switch").  With ``directed=True`` every channel becomes its own
    edge, matching the directed-channel view of the simulator.
    """
    graph: nx.Graph = nx.DiGraph() if directed else nx.Graph()
    label = prefix or tree.name
    for node in tree.nodes():
        graph.add_node(_node_key(label, node), kind="node", level=-1, index=node.index)
    for switch in tree.switches():
        graph.add_node(
            _switch_key(label, switch), kind="switch", level=switch.level, address=switch.address
        )
    for node in tree.nodes():
        leaf = tree.leaf_switch_of(node)
        _add_edge(graph, _node_key(label, node), _switch_key(label, leaf), "node-switch", directed)
    for level in range(tree.n - 1):
        for switch in tree.switches_at_level(level):
            for upper in tree.up_switches(switch):
                _add_edge(
                    graph,
                    _switch_key(label, switch),
                    _switch_key(label, upper),
                    "switch-switch",
                    directed,
                )
    return graph


def multicluster_to_networkx(system: MultiClusterSystem, *, include_icn1: bool = True) -> nx.Graph:
    """Convert a whole multi-cluster system into one networkx graph.

    Every cluster contributes its ECN1 (and optionally its ICN1); the ICN2
    tree is added with the concentrators as its leaves, and each concentrator
    is linked to every root switch of its cluster's ECN1 so the graph is
    connected the same way the message-flow model of Fig. 2 is.
    """
    graph = nx.Graph()
    for cluster in system.clusters:
        ecn_graph = tree_to_networkx(cluster.ecn1, prefix=f"c{cluster.index}/ECN1")
        graph = nx.compose(graph, ecn_graph)
        if include_icn1:
            icn_graph = tree_to_networkx(cluster.icn1, prefix=f"c{cluster.index}/ICN1")
            graph = nx.compose(graph, icn_graph)
            # The same physical node appears in both of its networks: tie the
            # two representations together with an explicit identity edge.
            for node in cluster.icn1.nodes():
                graph.add_edge(
                    _node_key(f"c{cluster.index}/ICN1", node),
                    _node_key(f"c{cluster.index}/ECN1", node),
                    kind="same-host",
                )
    icn2_graph = tree_to_networkx(system.icn2, prefix="ICN2")
    graph = nx.compose(graph, icn2_graph)
    for concentrator in system.concentrators:
        cluster = system.cluster(concentrator.cluster_index)
        concentrator_key: Hashable = ("ICN2", "node", concentrator.icn2_node.index)
        graph.nodes[concentrator_key]["kind"] = "concentrator"
        graph.nodes[concentrator_key]["cluster"] = concentrator.cluster_index
        for root in cluster.ecn1.switches_at_level(cluster.ecn1.root_level):
            graph.add_edge(
                concentrator_key,
                _switch_key(f"c{cluster.index}/ECN1", root),
                kind="concentrator-link",
            )
    return graph


def _add_edge(graph: nx.Graph, a: Hashable, b: Hashable, kind: str, directed: bool) -> None:
    graph.add_edge(a, b, kind=kind)
    if directed:
        graph.add_edge(b, a, kind=kind)
