"""Network topologies of the multi-cluster system.

The paper builds every communication network (the per-cluster ICN1 and ECN1
and the global ICN2) as an *m-port n-tree* fat tree [Lin 2003], a Clos-style
constant-bisection-bandwidth topology made of fixed-arity m-port switches:

* :mod:`repro.topology.fat_tree` — the m-port n-tree itself: node/switch
  addressing, channel enumeration, neighbourhood queries (Eq. 1-2);
* :mod:`repro.topology.multicluster` — the heterogeneous multi-cluster
  system of Fig. 1: ``C`` clusters with per-cluster ICN1/ECN1, a global ICN2
  whose "nodes" are the per-cluster concentrator/dispatcher units, and the
  Table 1 system organisations used in the validation study;
* :mod:`repro.topology.properties` — derived metrics (bisection width,
  diameter, link counts, distance distributions) used both by tests and by
  the design-space exploration example;
* :mod:`repro.topology.graph` — exports to :mod:`networkx` for visualisation
  and for graph-theoretic cross-checks;
* :mod:`repro.topology.compile` — the compilation pass lowering a system's
  object graph to dense integer channel ids and flat metadata arrays (the
  representation the wormhole simulator's hot path runs on).
"""

from repro.topology.fat_tree import (
    Channel,
    ChannelKind,
    FatTreeNode,
    FatTreeSwitch,
    MPortNTree,
    num_nodes_formula,
    num_switches_formula,
)
from repro.topology.multicluster import (
    Cluster,
    ClusterSpec,
    Concentrator,
    MultiClusterSystem,
    MultiClusterSpec,
)
from repro.topology.properties import (
    bisection_channels,
    channel_count,
    diameter,
    distance_histogram,
    link_count,
    mean_internode_distance,
)
from repro.topology.graph import multicluster_to_networkx, tree_to_networkx
from repro.topology.compile import (
    CompiledSystem,
    CompiledTree,
    Topology,
    compile_system,
    compile_tree,
)

__all__ = [
    "CompiledSystem",
    "CompiledTree",
    "Topology",
    "compile_system",
    "compile_tree",
    "Channel",
    "ChannelKind",
    "FatTreeNode",
    "FatTreeSwitch",
    "MPortNTree",
    "num_nodes_formula",
    "num_switches_formula",
    "Cluster",
    "ClusterSpec",
    "Concentrator",
    "MultiClusterSystem",
    "MultiClusterSpec",
    "bisection_channels",
    "channel_count",
    "diameter",
    "distance_histogram",
    "link_count",
    "mean_internode_distance",
    "multicluster_to_networkx",
    "tree_to_networkx",
]
