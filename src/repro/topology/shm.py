"""Shared-memory export of compiled topology metadata.

:class:`~repro.topology.compile.CompiledTree` is rebuilt per process today:
fork-started pool workers inherit the module caches for free, but a
*persistent* worker daemon (:mod:`repro.service.daemon`) outlives any one
campaign and may host spawn-started or restarted workers that inherited
nothing.  This module gives the daemon an explicit transport: the compiled
flat metadata arrays are copied once into one
:mod:`multiprocessing.shared_memory` segment and every worker maps them as
zero-copy NumPy views instead of re-walking the object-graph topology.

Two halves:

* :class:`SharedArena` — one named shared-memory segment packing several
  named 1-D NumPy arrays, with a JSON-able layout manifest so the receiving
  process can rebuild the views without pickling array data.
* :func:`export_trees` / :func:`attach_trees` / :func:`install_trees` — the
  :class:`CompiledTree` codec over an arena.  Attached trees are
  :class:`SharedCompiledTree` instances duck-typing the *array* surface of a
  compiled tree (the hot path); the decompile surface (``channels`` /
  ``channel_ids``) deliberately does not cross the process boundary and
  raises loudly if touched.

Ownership discipline: the exporting process (the daemon parent) owns every
segment and is the only one that may ``unlink`` it.  Attaching processes
map, read, and simply exit — :func:`SharedArena.attach` unregisters the
segment from the :mod:`multiprocessing.resource_tracker`, which would
otherwise tear the owner's segment down when the first attacher exits
(CPython registers attached segments exactly like created ones).
"""

from __future__ import annotations

import secrets
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Dict, Iterable, List, Tuple

import numpy as np

from repro.topology.compile import _COMPILED_TREES, CompiledTree, compile_tree
from repro.utils.validation import ValidationError

__all__ = [
    "SharedArena",
    "SharedCompiledGraph",
    "SharedCompiledTree",
    "attach_graphs",
    "attach_trees",
    "export_graphs",
    "export_trees",
    "install_graphs",
    "install_trees",
]

#: Prefix of every segment this package creates; the shutdown tests sweep
#: ``/dev/shm`` for leftovers by this marker.
SEGMENT_PREFIX = "repro_shm"


def _untrack(segment: shared_memory.SharedMemory) -> None:
    """Detach ``segment`` from the resource tracker (attacher side only).

    CPython's resource tracker registers *attached* segments as if the
    attacher had created them, then unlinks everything it tracked when that
    process exits — which would destroy the daemon's segment the moment the
    first worker finishes.  The owner keeps its registration; attachers must
    not.
    """
    try:
        resource_tracker.unregister(segment._name, "shared_memory")  # noqa: SLF001
    except Exception:  # pragma: no cover - tracker variations across versions
        pass


class SharedArena:
    """One shared-memory segment holding several named 1-D NumPy arrays.

    Created by the exporting process (``owner=True``) from a name->array
    mapping; rebuilt in any other process from the :meth:`manifest` dict.
    Views returned by :meth:`array` alias the segment directly — no copy.
    """

    def __init__(
        self,
        segment: shared_memory.SharedMemory,
        layout: Dict[str, Dict[str, Any]],
        *,
        owner: bool,
    ) -> None:
        self._segment = segment
        self._layout = layout
        self._owner = owner
        self._closed = False

    @property
    def name(self) -> str:
        """The segment name (``/dev/shm/<name>`` on Linux)."""
        return self._segment.name

    @property
    def owner(self) -> bool:
        return self._owner

    @classmethod
    def create(cls, arrays: Dict[str, np.ndarray]) -> "SharedArena":
        """Pack ``arrays`` (copied) into one fresh segment and own it."""
        layout: Dict[str, Dict[str, Any]] = {}
        offset = 0
        packed: List[Tuple[int, np.ndarray]] = []
        for key, array in arrays.items():
            flat = np.ascontiguousarray(array).reshape(-1)
            layout[key] = {
                "offset": offset,
                "count": int(flat.shape[0]),
                "dtype": str(flat.dtype),
            }
            packed.append((offset, flat))
            offset += flat.nbytes
        segment = shared_memory.SharedMemory(
            create=True,
            size=max(1, offset),
            name=f"{SEGMENT_PREFIX}_{secrets.token_hex(6)}",
        )
        for start, flat in packed:
            view = np.ndarray(flat.shape, dtype=flat.dtype, buffer=segment.buf, offset=start)
            view[:] = flat
        return cls(segment, layout, owner=True)

    @classmethod
    def attach(cls, manifest: Dict[str, Any]) -> "SharedArena":
        """Map an existing segment from its :meth:`manifest` (read-only use)."""
        segment = shared_memory.SharedMemory(name=manifest["segment"], create=False)
        _untrack(segment)
        return cls(segment, dict(manifest["layout"]), owner=False)

    def manifest(self) -> Dict[str, Any]:
        """JSON-able description another process can :meth:`attach` from."""
        return {"segment": self.name, "layout": self._layout}

    def array(self, key: str) -> np.ndarray:
        """Zero-copy view of the named array."""
        entry = self._layout[key]
        return np.ndarray(
            (entry["count"],),
            dtype=np.dtype(entry["dtype"]),
            buffer=self._segment.buf,
            offset=entry["offset"],
        )

    def close(self) -> None:
        """Drop this process's mapping (the segment itself survives)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._segment.close()
        except BufferError:  # pragma: no cover - live views keep the map open
            self._closed = False

    def destroy(self) -> None:
        """Owner-only: unlink the segment from the system, then unmap."""
        if self._owner:
            try:
                # Workers launched with an inherited tracker fd (spawn and
                # fork both share the parent's tracker on POSIX) have already
                # unregistered this name when they attached; re-registering
                # first keeps unlink's own unregister balanced, so the
                # tracker never logs a spurious KeyError at exit.
                resource_tracker.register(self._segment._name, "shared_memory")  # noqa: SLF001
            except Exception:  # pragma: no cover - tracker variations
                pass
            try:
                self._segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        role = "owner" if self._owner else "view"
        return f"SharedArena({self.name!r}, {len(self._layout)} arrays, {role})"


class SharedCompiledTree:
    """The array surface of a :class:`CompiledTree`, mapped from an arena.

    Satisfies everything the simulator and the system compiler read —
    ``num_nodes`` / ``num_switches`` / ``num_channels`` plus the four flat
    metadata arrays.  The decompile surface needs ``Channel`` objects, which
    never cross the process boundary: touching it raises a
    :class:`ValidationError` naming the daemon as the place to decompile.
    """

    __slots__ = (
        "m",
        "n",
        "num_nodes",
        "num_switches",
        "num_channels",
        "kind_codes",
        "is_node_channel",
        "source_ids",
        "target_ids",
        "_arena",
    )

    def __init__(self, meta: Dict[str, Any], arena: SharedArena) -> None:
        self.m = int(meta["m"])
        self.n = int(meta["n"])
        self.num_nodes = int(meta["num_nodes"])
        self.num_switches = int(meta["num_switches"])
        self.num_channels = int(meta["num_channels"])
        prefix = _tree_prefix(self.m, self.n)
        self.kind_codes = arena.array(f"{prefix}/kind_codes")
        self.is_node_channel = arena.array(f"{prefix}/is_node_channel")
        self.source_ids = arena.array(f"{prefix}/source_ids")
        self.target_ids = arena.array(f"{prefix}/target_ids")
        self._arena = arena

    def _no_objects(self, what: str) -> ValidationError:
        return ValidationError(
            f"shared compiled tree (m={self.m}, n={self.n}) has no {what}: "
            "channel objects do not cross the process boundary — decompile "
            "in the owning (daemon) process"
        )

    @property
    def channels(self):
        raise self._no_objects("channel objects")

    @property
    def channel_ids(self):
        raise self._no_objects("channel-id map")

    def index_of(self, channel) -> int:
        raise self._no_objects("channel-id map")

    def channel_at(self, cid: int):
        raise self._no_objects("channel objects")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SharedCompiledTree(m={self.m}, n={self.n}, "
            f"channels={self.num_channels}, segment={self._arena.name!r})"
        )


def _tree_prefix(m: int, n: int) -> str:
    return f"tree-{int(m)}x{int(n)}"


def export_trees(shapes: Iterable[Tuple[int, int]]) -> Tuple[SharedArena, Dict[str, Any]]:
    """Compile (or reuse) every shape and pack its arrays into one arena.

    Returns the owning arena plus a JSON-able manifest for
    :func:`attach_trees`.  The caller (the daemon) keeps the arena alive for
    its lifetime and calls :meth:`SharedArena.destroy` at shutdown.
    """
    arrays: Dict[str, np.ndarray] = {}
    trees: List[Dict[str, int]] = []
    for m, n in dict.fromkeys((int(m), int(n)) for m, n in shapes):
        compiled = compile_tree(m, n)
        if not isinstance(compiled, CompiledTree):  # pragma: no cover - guard
            raise ValidationError(
                f"cannot re-export shape ({m}, {n}): the cache already holds "
                "a shared view, and only an owning process may export"
            )
        prefix = _tree_prefix(m, n)
        arrays[f"{prefix}/kind_codes"] = compiled.kind_codes
        arrays[f"{prefix}/is_node_channel"] = compiled.is_node_channel
        arrays[f"{prefix}/source_ids"] = compiled.source_ids
        arrays[f"{prefix}/target_ids"] = compiled.target_ids
        trees.append(
            {
                "m": m,
                "n": n,
                "num_nodes": compiled.num_nodes,
                "num_switches": compiled.num_switches,
                "num_channels": compiled.num_channels,
            }
        )
    arena = SharedArena.create(arrays)
    manifest = dict(arena.manifest())
    manifest["trees"] = trees
    return arena, manifest


def attach_trees(manifest: Dict[str, Any]) -> Tuple[SharedArena, Tuple[SharedCompiledTree, ...]]:
    """Map an :func:`export_trees` manifest into shared tree views."""
    arena = SharedArena.attach(manifest)
    return arena, tuple(SharedCompiledTree(meta, arena) for meta in manifest["trees"])


def install_trees(manifest: Dict[str, Any]) -> SharedArena:
    """Attach and publish the shared trees through :func:`compile_tree`.

    Shapes already compiled in this process (e.g. fork-inherited) win — the
    shared view only fills cache misses, so an owning process can never
    shadow its own real :class:`CompiledTree` objects.  Returns the arena;
    the caller must keep it referenced for as long as the views are in use.
    """
    arena, shared = attach_trees(manifest)
    for tree in shared:
        _COMPILED_TREES.setdefault((tree.m, tree.n), tree)
    return arena


# --------------------------------------------------------------------------- #
# Zoo topologies (repro.topology.zoo) over the same arena transport
# --------------------------------------------------------------------------- #
class SharedCompiledGraph:
    """The array surface of a zoo :class:`CompiledGraph`, mapped from an arena.

    Same contract as :class:`SharedCompiledTree`: everything the simulator
    and the zoo system compiler read crosses the boundary as zero-copy
    views; the decompile surface (``channels`` / ``channel_ids``) does not
    and raises loudly.
    """

    __slots__ = (
        "token",
        "num_nodes",
        "num_switches",
        "num_channels",
        "kind_codes",
        "is_node_channel",
        "source_ids",
        "target_ids",
        "_arena",
    )

    def __init__(self, meta: Dict[str, Any], arena: SharedArena) -> None:
        self.token = str(meta["token"])
        self.num_nodes = int(meta["num_nodes"])
        self.num_switches = int(meta["num_switches"])
        self.num_channels = int(meta["num_channels"])
        self.kind_codes = arena.array(f"{self.token}/kind_codes")
        self.is_node_channel = arena.array(f"{self.token}/is_node_channel")
        self.source_ids = arena.array(f"{self.token}/source_ids")
        self.target_ids = arena.array(f"{self.token}/target_ids")
        self._arena = arena

    def _no_objects(self, what: str) -> ValidationError:
        return ValidationError(
            f"shared compiled graph {self.token!r} has no {what}: channel "
            "objects do not cross the process boundary — decompile in the "
            "owning (daemon) process"
        )

    @property
    def channels(self):
        raise self._no_objects("channel objects")

    @property
    def channel_ids(self):
        raise self._no_objects("channel-id map")

    def index_of(self, channel) -> int:
        raise self._no_objects("channel-id map")

    def channel_at(self, cid: int):
        raise self._no_objects("channel objects")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SharedCompiledGraph({self.token!r}, channels={self.num_channels}, "
            f"segment={self._arena.name!r})"
        )


def export_graphs(specs: Iterable[Any]) -> Tuple[SharedArena, Dict[str, Any]]:
    """Compile (or reuse) every zoo spec and pack its arrays into one arena.

    The zoo counterpart of :func:`export_trees`; entries are keyed by the
    spec's ``token`` (which encodes kind *and* every parameter, so two
    families whose sizes collide can never share arena slots), and the
    manifest carries each spec's ``kind``/``params`` so the attaching
    process can rebuild the cache key without importing the builder.
    """
    # Imported lazily: the zoo package is optional on the import path of
    # fat-tree-only consumers.
    from repro.topology.zoo.compile import CompiledGraph, compile_graph

    arrays: Dict[str, np.ndarray] = {}
    graphs: List[Dict[str, Any]] = []
    seen: set = set()
    for spec in specs:
        if spec.identity in seen:
            continue
        seen.add(spec.identity)
        compiled = compile_graph(spec)
        if not isinstance(compiled, CompiledGraph):  # pragma: no cover - guard
            raise ValidationError(
                f"cannot re-export zoo spec {spec.token!r}: the cache already "
                "holds a shared view, and only an owning process may export"
            )
        arrays[f"{spec.token}/kind_codes"] = compiled.kind_codes
        arrays[f"{spec.token}/is_node_channel"] = compiled.is_node_channel
        arrays[f"{spec.token}/source_ids"] = compiled.source_ids
        arrays[f"{spec.token}/target_ids"] = compiled.target_ids
        graphs.append(
            {
                "token": spec.token,
                "kind": spec.kind,
                "params": dict(spec.params),
                "num_nodes": compiled.num_nodes,
                "num_switches": compiled.num_switches,
                "num_channels": compiled.num_channels,
            }
        )
    arena = SharedArena.create(arrays)
    manifest = dict(arena.manifest())
    manifest["graphs"] = graphs
    return arena, manifest


def attach_graphs(
    manifest: Dict[str, Any],
) -> Tuple[SharedArena, Tuple[SharedCompiledGraph, ...]]:
    """Map an :func:`export_graphs` manifest into shared graph views."""
    arena = SharedArena.attach(manifest)
    return arena, tuple(SharedCompiledGraph(meta, arena) for meta in manifest["graphs"])


def install_graphs(manifest: Dict[str, Any]) -> SharedArena:
    """Attach and publish shared zoo graphs through the zoo compile cache.

    Specs already compiled in this process win (``setdefault`` semantics via
    :func:`repro.topology.zoo.compile.install_compiled_graph`).  Returns the
    arena; keep it referenced while the views are in use.
    """
    from repro.topology.zoo.compile import install_compiled_graph
    from repro.topology.zoo.spec import TopologySpec

    arena, shared = attach_graphs(manifest)
    for meta, graph in zip(manifest["graphs"], shared):
        install_compiled_graph(TopologySpec(meta["kind"], dict(meta["params"])), graph)
    return arena
