"""The topology zoo: compiled topologies beyond the paper's fat-tree.

Importing this package registers the built-in families (k-ary pod
fat-tree, depth/fanout tree, 2-D torus) with the
:class:`~repro.topology.zoo.spec.TopologySpec` registry.
"""

from repro.topology.zoo.compile import (
    CompiledGraph,
    CompiledZooSystem,
    ZooSystem,
    clear_zoo_compile_caches,
    compile_graph,
    compile_zoo_system,
)
from repro.topology.zoo.graphs import (
    FanoutTree,
    GraphSwitch,
    Host,
    KAryFatTree,
    Torus2D,
    ZooTopology,
)
from repro.topology.zoo.spec import (
    TopologySpec,
    build_topology,
    register_topology,
    zoo_kinds,
)

__all__ = [
    "CompiledGraph",
    "CompiledZooSystem",
    "FanoutTree",
    "GraphSwitch",
    "Host",
    "KAryFatTree",
    "Torus2D",
    "TopologySpec",
    "ZooSystem",
    "ZooTopology",
    "build_topology",
    "clear_zoo_compile_caches",
    "compile_graph",
    "compile_zoo_system",
    "register_topology",
    "zoo_kinds",
]
