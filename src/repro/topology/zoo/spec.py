"""Declarative (JSON-safe) descriptions of zoo topologies.

:class:`TopologySpec` is the zoo's counterpart of
:class:`repro.api.PatternSpec`: a ``kind`` naming a registered topology
family plus the integer constructor parameters, so a scenario can carry a
zoo topology through JSON round trips, campaign plans and content-store
keys.  The spec also plays the role :class:`~repro.topology.multicluster.
MultiClusterSpec` plays for the paper's system — it keys the compile
caches (via :attr:`TopologySpec.identity`, since the params mapping is
not hashable) and names shared-memory segments (:attr:`TopologySpec.token`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Tuple

from repro.utils.validation import ValidationError

__all__ = [
    "TopologySpec",
    "ZOO_BUILDERS",
    "build_topology",
    "clear_shared_topologies",
    "register_topology",
    "zoo_kinds",
]

#: Topology family constructors by kind name.
ZOO_BUILDERS: Dict[str, Callable[..., Any]] = {}


def register_topology(kind: str, builder: Callable[..., Any]) -> None:
    """Register a topology family ``builder(**params) -> ZooTopology``."""
    if not kind:
        raise ValidationError("topology kind must not be empty")
    ZOO_BUILDERS[kind] = builder


def zoo_kinds() -> Tuple[str, ...]:
    """All registered topology family names, sorted."""
    _ensure_builtin_families()
    return tuple(sorted(ZOO_BUILDERS))


def _ensure_builtin_families() -> None:
    # Imported lazily so `spec` stays importable without pulling the graph
    # classes in (and to avoid a cycle with modules importing TopologySpec).
    if "torus" not in ZOO_BUILDERS:
        from repro.topology.zoo.graphs import FanoutTree, KAryFatTree, Torus2D

        register_topology("fattree", KAryFatTree)
        register_topology("tree", FanoutTree)
        register_topology("torus", Torus2D)


@dataclass(frozen=True)
class TopologySpec:
    """Declarative description of one zoo topology.

    ``kind`` names a registered family (``"fattree"``, ``"tree"``,
    ``"torus"``) and ``params`` carries its integer constructor arguments,
    e.g. ``TopologySpec("torus", {"rows": 4, "cols": 4})``.
    """

    kind: str
    params: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        _ensure_builtin_families()
        if self.kind not in ZOO_BUILDERS:
            raise ValidationError(
                f"unknown topology kind {self.kind!r}; "
                f"expected one of {sorted(ZOO_BUILDERS)}"
            )
        object.__setattr__(
            self, "params", {str(key): int(value) for key, value in self.params.items()}
        )

    # ------------------------------------------------------------- identity
    @property
    def identity(self) -> Tuple[Any, ...]:
        """Hashable full identity — the compile-cache key for this spec."""
        return (self.kind, tuple(sorted(self.params.items())))

    @property
    def token(self) -> str:
        """Filesystem/shared-memory-safe identity token."""
        args = "-".join(f"{key}{value}" for key, value in sorted(self.params.items()))
        return f"zoo-{self.kind}-{args}" if args else f"zoo-{self.kind}"

    # ---------------------------------------------------- system-like surface
    @property
    def name(self) -> str:
        return build_topology(self).name

    @property
    def num_clusters(self) -> int:
        """Zoo topologies compile as a single degenerate cluster."""
        return 1

    @property
    def total_nodes(self) -> int:
        return build_topology(self).num_nodes

    def build(self) -> Any:
        """Instantiate the concrete :class:`~repro.topology.zoo.graphs.ZooTopology`."""
        return ZOO_BUILDERS[self.kind](**self.params)

    def describe(self) -> str:
        topology = build_topology(self)
        return (
            f"{topology.name}: hosts={topology.num_nodes}, "
            f"switches={topology.num_switches}, links={topology.num_links}"
        )


#: Shared topology instances keyed by full identity, so the compile pass,
#: the router and the tests all reuse one memoised link/depth computation.
_SHARED_TOPOLOGIES: Dict[Tuple[Any, ...], Any] = {}


def build_topology(spec: TopologySpec) -> Any:
    """The (cached) shared topology instance of ``spec``."""
    topology = _SHARED_TOPOLOGIES.get(spec.identity)
    if topology is None:
        topology = _SHARED_TOPOLOGIES[spec.identity] = spec.build()
    return topology


def clear_shared_topologies() -> None:
    """Drop the shared topology instances (test isolation hook)."""
    _SHARED_TOPOLOGIES.clear()
