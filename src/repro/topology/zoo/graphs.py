"""The topology zoo: graph topologies beyond the paper's m-port n-tree.

Every member lowers to the exact representation the compilation pass of
:mod:`repro.topology.compile` produces for fat trees — a deterministic
enumeration of directed :class:`~repro.topology.fat_tree.Channel` objects
over dense host/switch indices — so the flat-array simulator hot path,
the frozen integer route tables and the shared-memory export all apply
unchanged.

A :class:`ZooTopology` is described by four things:

* dense host indices ``0 .. num_nodes - 1`` and the switch each host
  attaches to (:meth:`ZooTopology.host_switch`);
* dense switch indices ``0 .. num_switches - 1``;
* a deterministic list of undirected switch-switch links
  (:meth:`ZooTopology.links`);
* a per-switch *depth* (:meth:`ZooTopology.switch_depths`) inducing the
  up*/down* orientation: every link is oriented so its UP direction goes
  from the endpoint with the larger ``(depth, switch_id)`` key to the
  smaller one.  For trees the depth is simply the level below the root;
  for the torus it is BFS distance from switch 0, the classical
  BFS-rooted up*/down* orientation for irregular networks.

The orientation key is a total order, so the UP-channel digraph is acyclic
by construction, and because every switch at depth ``d > 0`` has a
neighbour at depth ``d - 1`` (its BFS/tree parent) every switch can reach
the root going up — which is exactly what makes up*/down* routing
deadlock-free *and* connected on every zoo member.

Channel enumeration order (the dense-id order the compiler freezes):
per host its (INJECTION, EJECTION) pair, then per link its (UP, DOWN)
pair, in :meth:`links` order.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from repro.topology.fat_tree import Channel, ChannelKind
from repro.utils.validation import ValidationError, check_positive_int


@dataclass(frozen=True, order=True)
class Host(object):
    """A processing node of a zoo topology, identified by its dense index."""

    index: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Host({self.index})"


@dataclass(frozen=True, order=True)
class GraphSwitch(object):
    """A switch of a zoo topology, identified by its dense index."""

    index: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GraphSwitch({self.index})"


class ZooTopology:
    """Base class: a switch graph with hosts, lowered to directed channels.

    Subclasses define the structure (:meth:`host_switch`, :meth:`links`,
    :meth:`switch_depths`); this base derives the :class:`Channel`
    enumeration satisfying :class:`repro.topology.compile.Topology`.
    """

    #: registry kind, set by each subclass (matches TopologySpec.kind)
    kind: str = ""

    name: str
    num_nodes: int
    num_switches: int

    def __init__(self) -> None:
        self._links: "Tuple[Tuple[int, int], ...] | None" = None
        self._depths: "Tuple[int, ...] | None" = None

    # ------------------------------------------------------------- structure
    def host_switch(self, host: int) -> int:
        """Dense index of the switch host ``host`` attaches to."""
        raise NotImplementedError

    def _build_links(self) -> List[Tuple[int, int]]:
        """The undirected switch-switch links, in deterministic order."""
        raise NotImplementedError

    def _build_depths(self) -> List[int]:
        """Per-switch depth inducing the up*/down* orientation."""
        raise NotImplementedError

    # --------------------------------------------------------------- derived
    def links(self) -> Tuple[Tuple[int, int], ...]:
        links = self._links
        if links is None:
            links = self._links = tuple(
                (int(a), int(b)) for a, b in self._build_links()
            )
            for a, b in links:
                if a == b:
                    raise ValidationError(f"self-link at switch {a}")
        return links

    def switch_depths(self) -> Tuple[int, ...]:
        depths = self._depths
        if depths is None:
            depths = self._depths = tuple(int(d) for d in self._build_depths())
            if len(depths) != self.num_switches:
                raise ValidationError(
                    f"{len(depths)} depths for {self.num_switches} switches"
                )  # pragma: no cover - structural invariant
        return depths

    @property
    def num_links(self) -> int:
        return len(self.links())

    @property
    def num_channels(self) -> int:
        """Two directed channels per host attachment and per link."""
        return 2 * self.num_nodes + 2 * self.num_links

    def oriented_links(self) -> Iterator[Tuple[int, int]]:
        """Links as ``(child, parent)`` pairs under the up*/down* orientation.

        The UP channel of a link goes from the endpoint with the larger
        ``(depth, id)`` key (the *child*, further from the root) to the
        smaller one (the *parent*).
        """
        depths = self.switch_depths()
        for a, b in self.links():
            if (depths[a], a) > (depths[b], b):
                yield a, b
            else:
                yield b, a

    def channels(self) -> Iterator[Channel]:
        """Directed channels in dense-id order (the compiled enumeration)."""
        for host in range(self.num_nodes):
            node = Host(host)
            switch = GraphSwitch(self.host_switch(host))
            yield Channel(node, switch, ChannelKind.INJECTION)
            yield Channel(switch, node, ChannelKind.EJECTION)
        for child, parent in self.oriented_links():
            lower = GraphSwitch(child)
            upper = GraphSwitch(parent)
            yield Channel(lower, upper, ChannelKind.UP)
            yield Channel(upper, lower, ChannelKind.DOWN)

    def switches(self) -> Iterator[GraphSwitch]:
        for index in range(self.num_switches):
            yield GraphSwitch(index)

    def nodes(self) -> Iterator[Host]:
        for index in range(self.num_nodes):
            yield Host(index)

    def validate(self) -> None:
        """Structural sanity checks shared by every family (test hook).

        Every switch below the top depth must have an up channel, so any
        switch can ascend to *some* root (a depth-0 switch; fat trees have
        several).  Pairwise route existence itself is pinned by the
        routing test suite, which walks every pair through the router.
        """
        depths = self.switch_depths()
        seen_up: Dict[int, bool] = {s: False for s in range(self.num_switches)}
        for child, parent in self.oriented_links():
            if (depths[child], child) <= (depths[parent], parent):
                raise ValidationError("orientation does not descend the key")
            seen_up[child] = True
        for switch in range(self.num_switches):
            if depths[switch] > 0 and not seen_up[switch]:
                raise ValidationError(f"switch {switch} has no up channel")
        for host in range(self.num_nodes):
            if not 0 <= self.host_switch(host) < self.num_switches:
                raise ValidationError(f"host {host} attaches out of range")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}({self.name}, hosts={self.num_nodes}, "
            f"switches={self.num_switches}, links={self.num_links})"
        )


class KAryFatTree(ZooTopology):
    """The k-ary pod fat-tree of Al-Fares et al. (k even).

    ``k`` pods, each with ``k/2`` edge and ``k/2`` aggregation switches in
    complete bipartite connection; ``(k/2)^2`` core switches, core
    ``j * k/2 + c`` connecting to aggregation switch ``j`` of every pod;
    ``k/2`` hosts per edge switch — ``k^3 / 4`` hosts in total.

    Switch ids: cores first, then aggregations pod-major, then edges
    pod-major.  Depths: core 0, aggregation 1, edge 2 — the canonical
    fat-tree up*/down* orientation.
    """

    kind = "fattree"

    def __init__(self, k: int) -> None:
        super().__init__()
        check_positive_int(k, "k")
        if k % 2 != 0 or k < 2:
            raise ValidationError(f"k must be even and >= 2, got {k}")
        self.k = int(k)
        half = self.k // 2
        self.half = half
        self.num_cores = half * half
        self.agg_base = self.num_cores
        self.edge_base = self.num_cores + self.k * half
        self.num_switches = self.edge_base + self.k * half
        self.num_nodes = self.k * half * half
        self.name = f"fattree(k={self.k})"

    def host_switch(self, host: int) -> int:
        return self.edge_base + host // self.half

    def _build_links(self) -> List[Tuple[int, int]]:
        half = self.half
        links: List[Tuple[int, int]] = []
        for pod in range(self.k):
            for agg in range(half):
                agg_id = self.agg_base + pod * half + agg
                for core in range(half):
                    links.append((agg_id, agg * half + core))
            for edge in range(half):
                edge_id = self.edge_base + pod * half + edge
                for agg in range(half):
                    links.append((edge_id, self.agg_base + pod * half + agg))
        return links

    def _build_depths(self) -> List[int]:
        depths = [0] * self.num_cores
        depths += [1] * (self.k * self.half)
        depths += [2] * (self.k * self.half)
        return depths


class FanoutTree(ZooTopology):
    """A complete switch tree of ``depth`` levels and constant ``fanout``.

    Level ``l`` holds ``fanout**l`` switches (one root at level 0); each
    leaf switch at level ``depth - 1`` carries ``fanout`` hosts, giving
    ``fanout**depth`` hosts — the mininet ``TreeTopo`` shape.  Switch ids
    are level-major (breadth-first), depth equals the level.
    """

    kind = "tree"

    def __init__(self, depth: int, fanout: int) -> None:
        super().__init__()
        check_positive_int(depth, "depth")
        check_positive_int(fanout, "fanout")
        if fanout < 2:
            raise ValidationError(f"fanout must be >= 2, got {fanout}")
        self.depth = int(depth)
        self.fanout = int(fanout)
        self._level_offsets: List[int] = []
        offset = 0
        for level in range(self.depth):
            self._level_offsets.append(offset)
            offset += self.fanout**level
        self.num_switches = offset
        self.num_nodes = self.fanout**self.depth
        self.name = f"tree(depth={self.depth},fanout={self.fanout})"

    def host_switch(self, host: int) -> int:
        return self._level_offsets[self.depth - 1] + host // self.fanout

    def _build_links(self) -> List[Tuple[int, int]]:
        links: List[Tuple[int, int]] = []
        for level in range(1, self.depth):
            base = self._level_offsets[level]
            parent_base = self._level_offsets[level - 1]
            for index in range(self.fanout**level):
                links.append((base + index, parent_base + index // self.fanout))
        return links

    def _build_depths(self) -> List[int]:
        depths: List[int] = []
        for level in range(self.depth):
            depths.extend([level] * (self.fanout**level))
        return depths


class Torus2D(ZooTopology):
    """A 2-D torus of ``rows x cols`` switches with one host per switch.

    Switch ``(i, j)`` has id ``i * cols + j`` and links to its east and
    south neighbours with wraparound (the mininet ``TorusTopo`` wiring);
    both dimensions must be at least 3 so no wrap link duplicates a grid
    link.  The up*/down* orientation is BFS-rooted at switch 0.
    """

    kind = "torus"

    def __init__(self, rows: int, cols: int) -> None:
        super().__init__()
        check_positive_int(rows, "rows")
        check_positive_int(cols, "cols")
        if rows < 3 or cols < 3:
            raise ValidationError(
                f"torus dimensions must be >= 3, got {rows}x{cols}"
            )
        self.rows = int(rows)
        self.cols = int(cols)
        self.num_switches = self.rows * self.cols
        self.num_nodes = self.num_switches
        self.name = f"torus({self.rows}x{self.cols})"

    def host_switch(self, host: int) -> int:
        return host

    def _build_links(self) -> List[Tuple[int, int]]:
        rows, cols = self.rows, self.cols
        links: List[Tuple[int, int]] = []
        for i in range(rows):
            for j in range(cols):
                here = i * cols + j
                links.append((here, i * cols + (j + 1) % cols))
                links.append((here, ((i + 1) % rows) * cols + j))
        return links

    def _build_depths(self) -> List[int]:
        adjacency: List[List[int]] = [[] for _ in range(self.num_switches)]
        for a, b in self.links():
            adjacency[a].append(b)
            adjacency[b].append(a)
        depths = [-1] * self.num_switches
        depths[0] = 0
        queue = deque([0])
        while queue:
            switch = queue.popleft()
            for neighbour in sorted(adjacency[switch]):
                if depths[neighbour] < 0:
                    depths[neighbour] = depths[switch] + 1
                    queue.append(neighbour)
        if min(depths) < 0:
            raise ValidationError("torus graph is not connected")  # pragma: no cover
        return depths
