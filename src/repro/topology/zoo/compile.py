"""Compilation of zoo topologies into the flat-array hot-path representation.

Mirror of :mod:`repro.topology.compile` for zoo members:

* :class:`CompiledGraph` assigns every directed channel of one
  :class:`~repro.topology.zoo.graphs.ZooTopology` a dense id (the
  enumeration order of :meth:`ZooTopology.channels`) and emits the same
  four flat metadata arrays a :class:`~repro.topology.compile.CompiledTree`
  carries.
* :class:`CompiledZooSystem` wraps one compiled graph in the
  :class:`~repro.topology.compile.CompiledSystem` surface the simulator
  kernels consume: a single degenerate cluster holding every host, an
  empty relay block, and a pool layout in which pool 0 is the whole
  network.  With one cluster no message is ever external, so the
  ECN1/ICN2/relay machinery of the kernels is never exercised — the flat
  hot path itself runs unchanged, instruction for instruction.

Both artifacts are cached per full topology *identity* (kind plus every
constructor parameter), never per bare shape tuple, so two families whose
parameters collide numerically can never serve each other's arrays.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

import numpy as np

from repro.topology.compile import KIND_CODES
from repro.topology.fat_tree import Channel
from repro.topology.zoo.graphs import Host, ZooTopology
from repro.topology.zoo.spec import TopologySpec, build_topology, clear_shared_topologies
from repro.utils.validation import ValidationError

__all__ = [
    "CompiledGraph",
    "CompiledZooSystem",
    "ZooCluster",
    "ZooSystem",
    "compile_graph",
    "compile_zoo_system",
    "clear_zoo_compile_caches",
]


class CompiledGraph:
    """One zoo topology lowered to dense channel ids and flat arrays.

    Same array surface as :class:`~repro.topology.compile.CompiledTree`:
    hosts keep their dense index as entity id, switch ``s`` becomes
    ``num_nodes + s``.
    """

    __slots__ = (
        "token",
        "num_nodes",
        "num_switches",
        "num_channels",
        "channels",
        "channel_ids",
        "kind_codes",
        "is_node_channel",
        "source_ids",
        "target_ids",
    )

    def __init__(self, topology: ZooTopology, token: str = "") -> None:
        self.token = token or topology.name
        self.num_nodes = topology.num_nodes
        self.num_switches = topology.num_switches
        channels: List[Channel] = list(topology.channels())
        if len(channels) != topology.num_channels:
            raise ValidationError(
                f"channel enumeration produced {len(channels)} channels, "
                f"expected {topology.num_channels}"
            )  # pragma: no cover - structural invariant
        self.num_channels = len(channels)
        self.channels = tuple(channels)
        self.channel_ids = {channel: cid for cid, channel in enumerate(channels)}

        def entity_id(entity) -> int:
            if isinstance(entity, Host):
                return entity.index
            return self.num_nodes + entity.index

        self.kind_codes = np.fromiter(
            (KIND_CODES[channel.kind] for channel in channels),
            dtype=np.uint8,
            count=self.num_channels,
        )
        self.is_node_channel = np.fromiter(
            (channel.kind.is_node_channel for channel in channels),
            dtype=np.bool_,
            count=self.num_channels,
        )
        self.source_ids = np.fromiter(
            (entity_id(channel.source) for channel in channels),
            dtype=np.int32,
            count=self.num_channels,
        )
        self.target_ids = np.fromiter(
            (entity_id(channel.target) for channel in channels),
            dtype=np.int32,
            count=self.num_channels,
        )

    def index_of(self, channel: Channel) -> int:
        """Dense id of ``channel`` (raises for channels of another topology)."""
        try:
            return self.channel_ids[channel]
        except KeyError:
            raise ValidationError(
                f"{channel!r} is not a channel of {self.token}"
            ) from None

    def channel_at(self, cid: int) -> Channel:
        """Decompile a dense id back into its :class:`Channel`."""
        if not 0 <= cid < self.num_channels:
            raise ValidationError(
                f"channel id {cid} out of range [0, {self.num_channels})"
            )
        return self.channels[cid]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompiledGraph({self.token}, channels={self.num_channels})"


class ZooCluster:
    """The single degenerate cluster a zoo topology compiles into."""

    __slots__ = ("index", "num_nodes")

    def __init__(self, num_nodes: int) -> None:
        self.index = 0
        self.num_nodes = num_nodes

    def nodes(self):
        for index in range(self.num_nodes):
            yield Host(index)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ZooCluster(nodes={self.num_nodes})"


class ZooSystem:
    """One-cluster system facade over a zoo topology.

    Duck-types the node-addressing surface of
    :class:`~repro.topology.multicluster.MultiClusterSystem` (cluster
    lookup, global/local index mapping, ``node_offsets``) so the traffic
    patterns, the stream pool and both simulator kernels run unmodified.
    """

    def __init__(self, spec: TopologySpec) -> None:
        self.spec = spec
        self.topology = build_topology(spec)
        self.clusters = [ZooCluster(self.topology.num_nodes)]
        self._node_offsets: "np.ndarray | None" = None

    @property
    def num_clusters(self) -> int:
        return 1

    @property
    def total_nodes(self) -> int:
        return self.clusters[0].num_nodes

    @property
    def cluster_sizes(self) -> Tuple[int, ...]:
        return (self.total_nodes,)

    def cluster(self, index: int) -> ZooCluster:
        if index != 0:
            raise ValidationError(f"cluster index {index} out of range [0, 1)")
        return self.clusters[0]

    def global_index(self, cluster_index: int, local_index: int) -> int:
        self.cluster(cluster_index)
        if not 0 <= local_index < self.total_nodes:
            raise ValidationError(
                f"local index {local_index} out of range [0, {self.total_nodes})"
            )
        return local_index

    def locate(self, global_index: int) -> Tuple[int, int]:
        if not 0 <= global_index < self.total_nodes:
            raise ValidationError(
                f"global index {global_index} out of range [0, {self.total_nodes})"
            )
        return 0, global_index

    def cluster_of(self, global_index: int) -> int:
        return self.locate(global_index)[0]

    @property
    def node_offsets(self) -> np.ndarray:
        offsets = self._node_offsets
        if offsets is None:
            offsets = np.asarray([0], dtype=np.int64)
            offsets.setflags(write=False)
            self._node_offsets = offsets
        return offsets

    def nodes(self):
        for node in self.clusters[0].nodes():
            yield 0, node

    def same_cluster(self, global_a: int, global_b: int) -> bool:
        self.locate(global_a)
        self.locate(global_b)
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ZooSystem({self.topology.name}, N={self.total_nodes})"


class CompiledZooSystem:
    """A zoo topology presented through the compiled-system surface.

    Slot layout: the graph's channels occupy slots ``0 .. num_channels``,
    followed by one concentrator and one dispatcher pseudo-slot — the
    ``C = 1`` relay block both kernels expect to exist.  No zoo route ever
    includes them (every message is intra-cluster), so they are never
    granted and never reported.  ``num_pools`` is 4 — matching the
    ``2C + 2`` layout at ``C = 1`` that both kernels size their per-pool
    structures by — with every channel in pool 0.
    """

    #: report keys used by channel-utilisation aggregation; with a single
    #: cluster only the first (the whole network) ever appears.
    utilisation_labels = ("network", "external", "crossing", "relays")

    __slots__ = (
        "spec",
        "system",
        "graph",
        "concentrator_base",
        "dispatcher_base",
        "total_slots",
        "num_pools",
        "is_node_channel_list",
        "pool_index_list",
        "pool_labels",
    )

    def __init__(self, spec: TopologySpec) -> None:
        self.spec = spec
        self.system = ZooSystem(spec)
        self.graph = compile_graph(spec)
        channels = self.graph.num_channels
        self.concentrator_base = channels
        self.dispatcher_base = channels + 1
        self.total_slots = channels + 2
        self.num_pools = 4
        self.pool_labels = ("network", "unused/external", "unused/crossing", "relays")
        self.pool_index_list = [0] * channels + [3, 3]
        self.is_node_channel_list = [
            bool(flag) for flag in self.graph.is_node_channel
        ] + [False, False]

    def header_times(self, t_cn: float, t_cs: float) -> List[float]:
        """Per-slot header (per-flit) times for one link timing."""
        return [t_cn if is_node else t_cs for is_node in self.is_node_channel_list]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompiledZooSystem({self.spec.token}, slots={self.total_slots})"


_COMPILED_GRAPHS: Dict[Tuple[Any, ...], CompiledGraph] = {}
_COMPILED_ZOO_SYSTEMS: Dict[Tuple[Any, ...], CompiledZooSystem] = {}

#: Same wholesale-clear policy as the fat-tree compile caches: a sweep over
#: many zoo organisations must not pin them all for the process lifetime.
_ZOO_CACHE_LIMIT = 64


def compile_graph(spec: TopologySpec) -> CompiledGraph:
    """The (cached) compiled channel arrays of ``spec``, keyed by identity."""
    key = spec.identity
    compiled = _COMPILED_GRAPHS.get(key)
    if compiled is None:
        if len(_COMPILED_GRAPHS) >= _ZOO_CACHE_LIMIT:
            _COMPILED_GRAPHS.clear()
        compiled = _COMPILED_GRAPHS[key] = CompiledGraph(
            build_topology(spec), spec.token
        )
    return compiled


def install_compiled_graph(spec: TopologySpec, graph: CompiledGraph) -> CompiledGraph:
    """Adopt an externally built (e.g. shm-attached) compiled graph.

    ``setdefault`` semantics: a graph already compiled locally wins, so an
    attach can never replace arrays the process is already pointing at.
    """
    return _COMPILED_GRAPHS.setdefault(spec.identity, graph)


def compile_zoo_system(spec: TopologySpec) -> CompiledZooSystem:
    """The (cached) compiled-system facade of ``spec``."""
    key = spec.identity
    compiled = _COMPILED_ZOO_SYSTEMS.get(key)
    if compiled is None:
        if len(_COMPILED_ZOO_SYSTEMS) >= _ZOO_CACHE_LIMIT:
            _COMPILED_ZOO_SYSTEMS.clear()
        compiled = _COMPILED_ZOO_SYSTEMS[key] = CompiledZooSystem(spec)
    return compiled


def clear_zoo_compile_caches() -> None:
    """Drop all compiled zoo artifacts (test isolation hook)."""
    _COMPILED_GRAPHS.clear()
    _COMPILED_ZOO_SYSTEMS.clear()
    clear_shared_topologies()
