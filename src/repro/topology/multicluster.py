"""The heterogeneous multi-cluster system of Fig. 1.

A :class:`MultiClusterSystem` is made of ``C`` clusters.  Cluster ``i`` has
``N_i`` computing nodes and two communication networks of its own:

* the **ICN1** (intra-communication network) carries messages whose source
  and destination are both inside cluster ``i``;
* the **ECN1** (external communication network) carries the cluster's share
  of inter-cluster traffic — every node has a second network interface
  attached directly to the ECN1, so external messages never touch the ICN1.

The clusters are joined by a single global **ICN2** whose "processing nodes"
are the per-cluster concentrator/dispatcher units: an external message
ascends in the source cluster's ECN1, is concentrated onto the ICN2, crosses
it, and is dispatched into the destination cluster's ECN1 for the descending
phase.

All three network types are m-port n-trees with the *same* switch arity
``m``; heterogeneity enters through the per-cluster tree height ``n_i`` (and
therefore the cluster size ``N_i = 2 (m/2)^{n_i}``), exactly the category of
heterogeneity the paper models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.topology.fat_tree import FatTreeNode, MPortNTree
from repro.utils.validation import (
    ValidationError,
    check_even,
    check_positive_int,
)


@dataclass(frozen=True)
class ClusterSpec:
    """Shorthand for "``count`` clusters of tree height ``n``".

    Table 1 of the paper describes system organisations this way, e.g.
    ``n_i = 1`` for clusters 0-11, ``n_i = 2`` for clusters 12-27 and
    ``n_i = 3`` for clusters 28-31.
    """

    n: int
    count: int

    def __post_init__(self) -> None:
        check_positive_int(self.n, "n")
        check_positive_int(self.count, "count")

    def heights(self) -> List[int]:
        """Expand into one tree height per cluster."""
        return [self.n] * self.count


@dataclass(frozen=True)
class MultiClusterSpec:
    """Static description of a multi-cluster organisation.

    Parameters
    ----------
    m:
        Switch arity shared by every network in the system.
    cluster_heights:
        Tree height ``n_i`` of each cluster, one entry per cluster.  The
        number of clusters ``C = len(cluster_heights)`` must itself be a
        valid m-port tree size (``C = 2 (m/2)^{n_c}`` for an integer
        ``n_c``) because the concentrators are the processing nodes of the
        ICN2.
    name:
        Optional label (used in reports; Table 1 rows are labelled by their
        total node count).
    """

    m: int
    cluster_heights: Tuple[int, ...]
    name: str = ""

    def __post_init__(self) -> None:
        check_even(self.m, "m")
        if self.m < 2:
            raise ValidationError(f"m must be >= 2, got {self.m}")
        object.__setattr__(self, "cluster_heights", tuple(self.cluster_heights))
        if not self.cluster_heights:
            raise ValidationError("cluster_heights must not be empty")
        for index, height in enumerate(self.cluster_heights):
            check_positive_int(height, f"cluster_heights[{index}]")
        # The ICN2 must be able to host exactly C concentrators.
        self.icn2_height  # noqa: B018 - property performs the validation

    @staticmethod
    def from_groups(m: int, groups: Sequence[ClusterSpec], name: str = "") -> "MultiClusterSpec":
        """Build a spec from Table-1-style groups of identical clusters."""
        heights: List[int] = []
        for group in groups:
            heights.extend(group.heights())
        return MultiClusterSpec(m=m, cluster_heights=tuple(heights), name=name)

    # ------------------------------------------------------------------ sizes
    @property
    def num_clusters(self) -> int:
        """``C``, the number of clusters."""
        return len(self.cluster_heights)

    @property
    def k(self) -> int:
        """Half the switch arity (``m / 2``)."""
        return self.m // 2

    def cluster_size(self, index: int) -> int:
        """``N_i``, the number of nodes of cluster ``index``."""
        self._check_cluster(index)
        return 2 * self.k ** self.cluster_heights[index]

    @property
    def cluster_sizes(self) -> Tuple[int, ...]:
        """``(N_0, ..., N_{C-1})``."""
        return tuple(self.cluster_size(i) for i in range(self.num_clusters))

    @property
    def total_nodes(self) -> int:
        """``N``, the total number of computing nodes in the system."""
        return sum(self.cluster_sizes)

    @property
    def icn2_height(self) -> int:
        """``n_c``, the height of the ICN2 tree (from ``C = 2 (m/2)^{n_c}``)."""
        if self.num_clusters < 2:
            raise ValidationError("a multi-cluster system needs at least 2 clusters")
        size = 2
        for candidate in range(1, 65):
            size = 2 * self.k**candidate
            if size == self.num_clusters:
                return candidate
            if size > self.num_clusters:
                break
        raise ValidationError(
            f"C={self.num_clusters} is not a valid {self.m}-port tree size "
            f"(needs C = 2*(m/2)^n_c for integer n_c)"
        )

    @property
    def is_homogeneous(self) -> bool:
        """True when every cluster has the same size (the baseline case)."""
        return len(set(self.cluster_heights)) == 1

    def describe(self) -> str:
        """One-line summary in the style of Table 1."""
        groups: List[str] = []
        start = 0
        heights = self.cluster_heights
        for index in range(1, len(heights) + 1):
            if index == len(heights) or heights[index] != heights[start]:
                groups.append(f"n={heights[start]} for clusters [{start},{index - 1}]")
                start = index
        label = self.name or f"N={self.total_nodes}"
        return f"{label}: C={self.num_clusters}, m={self.m}, " + "; ".join(groups)

    def _check_cluster(self, index: int) -> None:
        if not 0 <= index < self.num_clusters:
            raise ValidationError(
                f"cluster index {index} out of range [0, {self.num_clusters})"
            )


@dataclass(frozen=True)
class Concentrator:
    """The concentrator/dispatcher unit of one cluster.

    It bridges the cluster's ECN1 and the global ICN2: outgoing traffic from
    the whole cluster is *concentrated* onto the concentrator's ICN2
    interface, incoming traffic is *dispatched* back into the ECN1.  On the
    ICN2 it occupies the processing-node slot ``icn2_node``.
    """

    cluster_index: int
    icn2_node: FatTreeNode


class Cluster:
    """One cluster of the system: its nodes plus its ICN1 and ECN1 trees."""

    def __init__(self, index: int, m: int, height: int) -> None:
        check_positive_int(height, "height")
        self.index = index
        self.height = height
        self.icn1 = MPortNTree(m, height, name=f"cluster{index}/ICN1")
        self.ecn1 = MPortNTree(m, height, name=f"cluster{index}/ECN1")

    @property
    def num_nodes(self) -> int:
        """``N_i`` for this cluster."""
        return self.icn1.num_nodes

    def nodes(self) -> Iterator[FatTreeNode]:
        """The cluster's processing nodes (local indices)."""
        return self.icn1.nodes()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Cluster(index={self.index}, n={self.height}, nodes={self.num_nodes})"


class MultiClusterSystem:
    """A concrete heterogeneous multi-cluster system (Fig. 1).

    The system owns one :class:`Cluster` per entry of the spec, the global
    ICN2 tree and one :class:`Concentrator` per cluster, and provides the
    global-node-index bookkeeping shared by the analytical model, the
    simulator and the experiment harness.
    """

    def __init__(self, spec: MultiClusterSpec) -> None:
        self.spec = spec
        self.clusters: List[Cluster] = [
            Cluster(index, spec.m, height)
            for index, height in enumerate(spec.cluster_heights)
        ]
        self.icn2 = MPortNTree(spec.m, spec.icn2_height, name="ICN2")
        if self.icn2.num_nodes != spec.num_clusters:
            raise ValidationError(
                f"ICN2 hosts {self.icn2.num_nodes} concentrators but the system "
                f"has {spec.num_clusters} clusters"
            )
        self.concentrators: List[Concentrator] = [
            Concentrator(cluster_index=i, icn2_node=FatTreeNode(i))
            for i in range(spec.num_clusters)
        ]
        self._offsets: List[int] = []
        offset = 0
        for cluster in self.clusters:
            self._offsets.append(offset)
            offset += cluster.num_nodes
        self._total_nodes = offset
        self._node_offsets: np.ndarray | None = None

    # ------------------------------------------------------------------ sizes
    @property
    def num_clusters(self) -> int:
        return len(self.clusters)

    @property
    def total_nodes(self) -> int:
        """``N``, the total number of computing nodes."""
        return self._total_nodes

    @property
    def cluster_sizes(self) -> Tuple[int, ...]:
        return tuple(cluster.num_nodes for cluster in self.clusters)

    @property
    def total_switches(self) -> int:
        """Total switch count over every ICN1, ECN1 and the ICN2."""
        per_cluster = sum(
            cluster.icn1.num_switches + cluster.ecn1.num_switches
            for cluster in self.clusters
        )
        return per_cluster + self.icn2.num_switches

    # --------------------------------------------------------- node addressing
    def cluster(self, index: int) -> Cluster:
        self.spec._check_cluster(index)
        return self.clusters[index]

    def global_index(self, cluster_index: int, local_index: int) -> int:
        """Dense system-wide index of node ``local_index`` of ``cluster_index``."""
        cluster = self.cluster(cluster_index)
        if not 0 <= local_index < cluster.num_nodes:
            raise ValidationError(
                f"local index {local_index} out of range [0, {cluster.num_nodes}) "
                f"for cluster {cluster_index}"
            )
        return self._offsets[cluster_index] + local_index

    def locate(self, global_index: int) -> Tuple[int, int]:
        """Map a dense system-wide node index back to ``(cluster, local index)``."""
        if not 0 <= global_index < self._total_nodes:
            raise ValidationError(
                f"global index {global_index} out of range [0, {self._total_nodes})"
            )
        # Linear scan over C clusters; C <= 32 in every paper configuration.
        for cluster_index in range(len(self.clusters) - 1, -1, -1):
            if global_index >= self._offsets[cluster_index]:
                return cluster_index, global_index - self._offsets[cluster_index]
        raise AssertionError("unreachable")  # pragma: no cover

    def cluster_of(self, global_index: int) -> int:
        """Cluster index of a dense system-wide node index."""
        return self.locate(global_index)[0]

    @property
    def node_offsets(self) -> np.ndarray:
        """Per-cluster starting global node index as a read-only int64 array.

        The vectorized counterpart of :meth:`locate`:
        ``searchsorted(node_offsets, g, side="right") - 1`` maps a batch of
        global indexes to their clusters in one call, with results identical
        to the scalar scan (both pick the last offset at or below ``g``).
        """
        offsets = self._node_offsets
        if offsets is None:
            offsets = np.asarray(self._offsets, dtype=np.int64)
            offsets.setflags(write=False)
            self._node_offsets = offsets
        return offsets

    def nodes(self) -> Iterator[Tuple[int, FatTreeNode]]:
        """All nodes as ``(cluster_index, node)`` pairs, cluster by cluster."""
        for cluster in self.clusters:
            for node in cluster.nodes():
                yield cluster.index, node

    def concentrator(self, cluster_index: int) -> Concentrator:
        self.spec._check_cluster(cluster_index)
        return self.concentrators[cluster_index]

    # ------------------------------------------------------------------ checks
    def same_cluster(self, global_a: int, global_b: int) -> bool:
        """True when two system-wide node indices belong to the same cluster."""
        return self.cluster_of(global_a) == self.cluster_of(global_b)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MultiClusterSystem(C={self.num_clusters}, m={self.spec.m}, "
            f"N={self.total_nodes}, heights={self.spec.cluster_heights})"
        )
