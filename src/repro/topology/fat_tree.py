"""The m-port n-tree fat-tree topology (Section 2, Eq. 1-2 of the paper).

An *m-port n-tree* [Lin 2003] is a fat tree built from switches with ``m``
ports each, ``n`` switch levels high.  It interconnects

.. math::

    N = 2 \\left(\\frac{m}{2}\\right)^n

processing nodes using

.. math::

    N_{sw} = (2n - 1) \\left(\\frac{m}{2}\\right)^{n-1}

switches (Eq. 1 and 2).  Every switch except the root switches splits its
ports half down / half up; root switches point all ``m`` ports down.  The
topology provides full bisection bandwidth, which is why the paper can ignore
link contention inside a tree.

Addressing scheme
-----------------
Let ``k = m / 2``.

* A **processing node** is a digit tuple ``p = (p_0, p_1, ..., p_{n-1})``
  with ``p_0`` in ``0..m-1`` and all other digits in ``0..k-1``.  Nodes also
  carry a dense integer index (``p`` read as a mixed-radix number, most
  significant digit first).
* A **switch** is a pair ``(level, w)`` where ``level`` runs from 0 (attached
  to nodes) to ``n-1`` (root) and ``w`` is a digit tuple of length ``n-1``.
  Positions ``0 .. n-2-level`` of ``w`` form the *subtree prefix* (which
  subtree of the level the switch serves) and the remaining ``level``
  positions form the *switch index* inside that subtree.  The first prefix
  digit ranges over ``0..m-1``; every other digit ranges over ``0..k-1``.

Two nodes whose digit tuples share a prefix of length ``n - j`` but differ at
position ``n - j`` have their nearest common ancestor (NCA) at switch level
``j - 1`` and are ``2 j`` links apart — the quantity the analytical model's
:func:`repro.model.probabilities.link_probability` distribution describes.

Connectivity
------------
* Node ``p`` attaches to the level-0 switch ``w = (p_0, ..., p_{n-2})``
  through its last digit ``p_{n-1}``.
* Switch ``(level, w)`` connects upward to every switch ``(level+1, w')``
  with ``w'`` equal to ``w`` everywhere except position ``n-2-level`` (the
  butterfly exchange digit), which ranges over ``0..k-1``.

Every physical link is modelled as two directed :class:`Channel` objects so
that the wormhole simulator can put an independent single-flit buffer on each
direction, exactly as assumption 4 of the paper requires.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from itertools import product
from typing import Dict, Iterator, List, Sequence, Tuple, Union

from repro.utils.validation import (
    ValidationError,
    check_even,
    check_positive_int,
)


def num_nodes_formula(m: int, n: int) -> int:
    """Number of processing nodes of an m-port n-tree (Eq. 1)."""
    check_even(m, "m")
    check_positive_int(n, "n")
    return 2 * (m // 2) ** n


def num_switches_formula(m: int, n: int) -> int:
    """Number of switches of an m-port n-tree (Eq. 2)."""
    check_even(m, "m")
    check_positive_int(n, "n")
    return (2 * n - 1) * (m // 2) ** (n - 1)


@dataclass(frozen=True, order=True)
class FatTreeNode:
    """A processing node, identified by its dense index within the tree."""

    index: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node({self.index})"


@dataclass(frozen=True, order=True)
class FatTreeSwitch:
    """A switch, identified by its level and digit-tuple address."""

    level: int
    address: Tuple[int, ...]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Switch(level={self.level}, address={self.address})"


Entity = Union[FatTreeNode, FatTreeSwitch]


class ChannelKind(str, Enum):
    """Classification of a directed channel.

    The analytical model distinguishes only node-switch channels (service
    time ``t_cn``, Eq. 14) from switch-switch channels (``t_cs``, Eq. 15);
    the finer up/down split is kept because the router and the simulator need
    it.
    """

    INJECTION = "injection"  # node -> switch
    EJECTION = "ejection"    # switch -> node
    UP = "up"                # switch -> higher-level switch
    DOWN = "down"            # switch -> lower-level switch

    @property
    def is_node_channel(self) -> bool:
        """True for channels with a processing node at one end."""
        return self in (ChannelKind.INJECTION, ChannelKind.EJECTION)


@dataclass(frozen=True)
class Channel:
    """A directed communication channel between two entities of one tree."""

    source: Entity
    target: Entity
    kind: ChannelKind

    def reversed(self) -> "Channel":
        """The channel going the opposite way over the same physical link."""
        reverse_kind = {
            ChannelKind.INJECTION: ChannelKind.EJECTION,
            ChannelKind.EJECTION: ChannelKind.INJECTION,
            ChannelKind.UP: ChannelKind.DOWN,
            ChannelKind.DOWN: ChannelKind.UP,
        }[self.kind]
        return Channel(self.target, self.source, reverse_kind)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Channel({self.source!r} -> {self.target!r}, {self.kind.value})"


class MPortNTree:
    """An m-port n-tree topology.

    Parameters
    ----------
    m:
        Number of ports per switch (even, at least 2).
    n:
        Number of switch levels (at least 1).  ``n = 1`` degenerates to a
        single m-port switch with ``m`` nodes attached, which is exactly how
        the smallest clusters of Table 1 are built.
    name:
        Optional label (e.g. ``"cluster3/ICN1"``) carried into channel
        diagnostics and networkx exports.
    """

    def __init__(self, m: int, n: int, name: str | None = None) -> None:
        check_even(m, "m")
        check_positive_int(n, "n")
        if m < 2:
            raise ValidationError(f"m must be >= 2, got {m}")
        self.m = int(m)
        self.n = int(n)
        self.k = self.m // 2
        self.name = name or f"{m}-port {n}-tree"
        # Per-instance memo of node index -> digit tuple.  Address arithmetic
        # is the inner loop of the route-compilation pass, and an instance
        # cache (unlike ``functools.lru_cache`` on a method) dies with the
        # tree instead of pinning it for the process lifetime.
        self._address_cache: Dict[int, Tuple[int, ...]] = {}

    # ------------------------------------------------------------------ sizes
    @property
    def num_nodes(self) -> int:
        """Number of processing nodes, Eq. (1)."""
        return 2 * self.k**self.n

    @property
    def num_switches(self) -> int:
        """Number of switches, Eq. (2)."""
        return (2 * self.n - 1) * self.k ** (self.n - 1)

    @property
    def num_levels(self) -> int:
        """Number of switch levels (``n``)."""
        return self.n

    @property
    def root_level(self) -> int:
        """Index of the root switch level."""
        return self.n - 1

    def switches_per_level(self, level: int) -> int:
        """Number of switches at ``level`` (root level has half as many)."""
        self._check_level(level)
        if level == self.root_level:
            return self.k ** (self.n - 1)
        return 2 * self.k ** (self.n - 1)

    @property
    def num_links(self) -> int:
        """Number of physical (bidirectional) links.

        ``N`` node-switch links plus ``N`` switch-switch links between each
        pair of adjacent switch levels.
        """
        return self.n * self.num_nodes

    @property
    def num_channels(self) -> int:
        """Number of directed channels (two per physical link)."""
        return 2 * self.num_links

    # ------------------------------------------------------------- addressing
    def node_address(self, index: int) -> Tuple[int, ...]:
        """Digit tuple ``(p_0, ..., p_{n-1})`` of the node with dense ``index``."""
        cached = self._address_cache.get(index)
        if cached is not None:
            return cached
        if not 0 <= index < self.num_nodes:
            raise ValidationError(
                f"node index {index} out of range [0, {self.num_nodes})"
            )
        digits = []
        remaining = index
        for position in range(self.n - 1, 0, -1):
            digits.append(remaining % self.k)
            remaining //= self.k
        digits.append(remaining)  # most significant digit, range 0..m-1
        address = tuple(reversed(digits))
        self._address_cache[index] = address
        return address

    def node_index(self, address: Sequence[int]) -> int:
        """Dense index of the node with digit tuple ``address``."""
        address = tuple(address)
        self._check_node_address(address)
        index = address[0]
        for digit in address[1:]:
            index = index * self.k + digit
        return index

    def node(self, index: int) -> FatTreeNode:
        """The :class:`FatTreeNode` with dense ``index`` (validated)."""
        self.node_address(index)  # validates the range
        return FatTreeNode(index)

    def switch(self, level: int, address: Sequence[int]) -> FatTreeSwitch:
        """The :class:`FatTreeSwitch` at ``level`` with digit tuple ``address``."""
        address = tuple(address)
        self._check_switch_address(level, address)
        return FatTreeSwitch(level, address)

    # ------------------------------------------------------------ enumeration
    def nodes(self) -> Iterator[FatTreeNode]:
        """All processing nodes in dense index order."""
        for index in range(self.num_nodes):
            yield FatTreeNode(index)

    def switches_at_level(self, level: int) -> Iterator[FatTreeSwitch]:
        """All switches at ``level`` in lexicographic address order."""
        self._check_level(level)
        for address in self._switch_addresses(level):
            yield FatTreeSwitch(level, address)

    def switches(self) -> Iterator[FatTreeSwitch]:
        """All switches, level 0 (leaf) first."""
        for level in range(self.n):
            yield from self.switches_at_level(level)

    def channels(self) -> Iterator[Channel]:
        """All directed channels of the tree."""
        for node in self.nodes():
            leaf = self.leaf_switch_of(node)
            yield Channel(node, leaf, ChannelKind.INJECTION)
            yield Channel(leaf, node, ChannelKind.EJECTION)
        for level in range(self.n - 1):
            for switch in self.switches_at_level(level):
                for upper in self.up_switches(switch):
                    yield Channel(switch, upper, ChannelKind.UP)
                    yield Channel(upper, switch, ChannelKind.DOWN)

    # ---------------------------------------------------------- neighbourhood
    def leaf_switch_of(self, node: FatTreeNode | int) -> FatTreeSwitch:
        """The level-0 switch the node attaches to."""
        index = node.index if isinstance(node, FatTreeNode) else node
        address = self.node_address(index)
        return FatTreeSwitch(0, address[: self.n - 1])

    def nodes_of_leaf_switch(self, switch: FatTreeSwitch) -> List[FatTreeNode]:
        """The processing nodes attached to a level-0 switch."""
        self._check_switch_address(switch.level, switch.address)
        if switch.level != 0:
            raise ValidationError("only level-0 switches have nodes attached")
        last_digit_range = self.m if self.n == 1 else self.k
        return [
            FatTreeNode(self.node_index(switch.address + (digit,)))
            for digit in range(last_digit_range)
        ]

    def up_switches(self, switch: FatTreeSwitch) -> List[FatTreeSwitch]:
        """Switches one level above connected to ``switch`` (empty at the root)."""
        self._check_switch_address(switch.level, switch.address)
        if switch.level >= self.root_level:
            return []
        exchange = self._exchange_position(switch.level)
        result = []
        for digit in range(self.k):
            address = list(switch.address)
            address[exchange] = digit
            result.append(FatTreeSwitch(switch.level + 1, tuple(address)))
        return result

    def down_switches(self, switch: FatTreeSwitch) -> List[FatTreeSwitch]:
        """Switches one level below connected to ``switch`` (empty at level 0)."""
        self._check_switch_address(switch.level, switch.address)
        if switch.level == 0:
            return []
        below = switch.level - 1
        exchange = self._exchange_position(below)
        digit_range = self.m if exchange == 0 else self.k
        result = []
        for digit in range(digit_range):
            address = list(switch.address)
            address[exchange] = digit
            result.append(FatTreeSwitch(below, tuple(address)))
        return result

    def down_ports(self, switch: FatTreeSwitch) -> int:
        """Number of downward ports in use on ``switch``."""
        if switch.level == 0:
            return self.m if self.n == 1 else self.k
        return len(self.down_switches(switch))

    def up_ports(self, switch: FatTreeSwitch) -> int:
        """Number of upward ports in use on ``switch`` (0 at the root level)."""
        return len(self.up_switches(switch))

    # ------------------------------------------------------------- navigation
    def parent_toward(self, switch: FatTreeSwitch, up_digit: int) -> FatTreeSwitch:
        """The level-above switch reached by taking up-port ``up_digit``."""
        if not 0 <= up_digit < self.k:
            raise ValidationError(f"up_digit must be in [0, {self.k}), got {up_digit}")
        if switch.level >= self.root_level:
            raise ValidationError("root switches have no parent")
        exchange = self._exchange_position(switch.level)
        address = list(switch.address)
        address[exchange] = up_digit
        return FatTreeSwitch(switch.level + 1, tuple(address))

    def child_toward(self, switch: FatTreeSwitch, node: FatTreeNode | int) -> FatTreeSwitch:
        """The level-below switch on the (unique) downward path toward ``node``."""
        if switch.level == 0:
            raise ValidationError("level-0 switches have no child switches")
        index = node.index if isinstance(node, FatTreeNode) else node
        digits = self.node_address(index)
        below = switch.level - 1
        exchange = self._exchange_position(below)
        address = list(switch.address)
        address[exchange] = digits[exchange]
        return FatTreeSwitch(below, tuple(address))

    def is_ancestor(self, switch: FatTreeSwitch, node: FatTreeNode | int) -> bool:
        """True if ``node`` lies in the subtree rooted (conceptually) at ``switch``.

        A switch at level ``l`` serves the subtree identified by its prefix
        digits (positions ``0 .. n-2-l``); root switches serve every node.
        """
        self._check_switch_address(switch.level, switch.address)
        index = node.index if isinstance(node, FatTreeNode) else node
        digits = self.node_address(index)
        prefix_length = self.n - 1 - switch.level
        return digits[:prefix_length] == switch.address[:prefix_length]

    def nca_distance(self, a: FatTreeNode | int, b: FatTreeNode | int) -> int:
        """The paper's ``j``: a 2j-link journey separates nodes ``a`` and ``b``.

        Returns 0 for ``a == b``.
        """
        index_a = a.index if isinstance(a, FatTreeNode) else a
        index_b = b.index if isinstance(b, FatTreeNode) else b
        if index_a == index_b:
            return 0
        digits_a = self.node_address(index_a)
        digits_b = self.node_address(index_b)
        common = 0
        for digit_a, digit_b in zip(digits_a, digits_b):
            if digit_a != digit_b:
                break
            common += 1
        return self.n - common

    def distance(self, a: FatTreeNode | int, b: FatTreeNode | int) -> int:
        """Number of links on the (minimal up*/down*) path between two nodes."""
        return 2 * self.nca_distance(a, b)

    # --------------------------------------------------------------- internals
    def _exchange_position(self, level: int) -> int:
        """Digit position that changes when moving between ``level`` and ``level+1``."""
        return self.n - 2 - level

    def _switch_addresses(self, level: int) -> Iterator[Tuple[int, ...]]:
        if self.n == 1:
            yield ()
            return
        ranges: List[range] = []
        for position in range(self.n - 1):
            if position == 0 and level < self.root_level:
                ranges.append(range(self.m))
            else:
                ranges.append(range(self.k))
        yield from product(*ranges)

    def _check_level(self, level: int) -> None:
        if not 0 <= level < self.n:
            raise ValidationError(f"level {level} out of range [0, {self.n})")

    def _check_node_address(self, address: Tuple[int, ...]) -> None:
        if len(address) != self.n:
            raise ValidationError(
                f"node address must have {self.n} digits, got {len(address)}"
            )
        if not 0 <= address[0] < self.m:
            raise ValidationError(
                f"node digit 0 must be in [0, {self.m}), got {address[0]}"
            )
        for position, digit in enumerate(address[1:], start=1):
            if not 0 <= digit < self.k:
                raise ValidationError(
                    f"node digit {position} must be in [0, {self.k}), got {digit}"
                )

    def _check_switch_address(self, level: int, address: Tuple[int, ...]) -> None:
        self._check_level(level)
        if len(address) != self.n - 1:
            raise ValidationError(
                f"switch address must have {self.n - 1} digits, got {len(address)}"
            )
        for position, digit in enumerate(address):
            if position == 0 and level < self.root_level and self.n > 1:
                limit = self.m
            else:
                limit = self.k
            if not 0 <= digit < limit:
                raise ValidationError(
                    f"switch digit {position} must be in [0, {limit}), got {digit}"
                )

    # ------------------------------------------------------------------ dunder
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MPortNTree):
            return NotImplemented
        return self.m == other.m and self.n == other.n

    def __hash__(self) -> int:
        return hash((self.m, self.n))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MPortNTree(m={self.m}, n={self.n}, nodes={self.num_nodes}, "
            f"switches={self.num_switches})"
        )


#: Module-level shared-tree cache, explicitly keyed by ``(m, n)``.  An
#: explicit dict (rather than ``functools.lru_cache``) keeps the keying
#: visible, lets tests clear it, and avoids the cache holding positional
#: argument tuples whose lifetime is easy to misread.
_SHARED_TREES: Dict[Tuple[int, int], MPortNTree] = {}


def shared_tree(m: int, n: int) -> MPortNTree:
    """A cached, shared m-port n-tree instance.

    Topology objects are logically immutable, so experiments that repeatedly
    build the same Table-1 organisations can share one instance (and its
    address memo) instead of recomputing address tables.  The cache is keyed
    by ``(m, n)`` — the only state a tree has besides its display name.
    """
    key = (int(m), int(n))
    tree = _SHARED_TREES.get(key)
    if tree is None:
        tree = _SHARED_TREES[key] = MPortNTree(m, n)
    return tree


def clear_shared_trees() -> None:
    """Drop every cached :func:`shared_tree` instance (test isolation hook)."""
    _SHARED_TREES.clear()
