"""Plain-text and CSV rendering of experiment results.

The benchmark harness regenerates the paper's figures as *tables of series*
(offered traffic vs mean latency, analysis vs simulation).  These helpers
render those tables for the terminal and to CSV files without pulling in a
plotting dependency.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, List, Sequence

from repro.utils.validation import ValidationError


def _fmt(value: Any, precision: int) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{precision}g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    *,
    precision: int = 6,
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table."""
    str_rows: List[List[str]] = [[_fmt(v, precision) for v in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValidationError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for idx, cell in enumerate(row):
            widths[idx] = max(widths[idx], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[idx]) for idx, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in str_rows)
    return "\n".join(lines)


def format_csv(headers: Sequence[str], rows: Iterable[Sequence[Any]]) -> str:
    """Render rows as CSV text (header line included)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(list(headers))
    for row in rows:
        writer.writerow(list(row))
    return buffer.getvalue()


def write_csv(path: str | Path, headers: Sequence[str], rows: Iterable[Sequence[Any]]) -> Path:
    """Write rows to ``path`` as CSV and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(format_csv(headers, rows), encoding="utf-8")
    return path


@dataclass
class ResultTable:
    """A small mutable table of results with named columns.

    Used by the experiment harness to accumulate one row per operating point
    and then render the full table once, mirroring how the paper reports one
    curve per (M, Lm) combination.
    """

    headers: Sequence[str]
    rows: List[List[Any]] = field(default_factory=list)
    title: str | None = None

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.headers):
            raise ValidationError(
                f"expected {len(self.headers)} values, got {len(values)}"
            )
        self.rows.append(list(values))

    def column(self, name: str) -> List[Any]:
        """Return the values of column ``name`` in row order."""
        try:
            idx = list(self.headers).index(name)
        except ValueError as exc:
            raise ValidationError(f"unknown column {name!r}") from exc
        return [row[idx] for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)

    def to_text(self, precision: int = 6) -> str:
        return format_table(self.headers, self.rows, precision=precision, title=self.title)

    def to_csv(self) -> str:
        return format_csv(self.headers, self.rows)

    def save_csv(self, path: str | Path) -> Path:
        return write_csv(path, self.headers, self.rows)
