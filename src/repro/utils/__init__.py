"""Utility helpers shared across the :mod:`repro` package.

The helpers are deliberately dependency-light: parameter validation,
unit conversions, deterministic RNG stream management, plain-text table
rendering and JSON-friendly result serialisation.
"""

from repro.utils.validation import (
    check_positive,
    check_non_negative,
    check_probability,
    check_positive_int,
    check_even,
    check_in_range,
    check_power_of,
    ValidationError,
)
from repro.utils.units import (
    TimeUnit,
    bandwidth_to_beta,
    beta_to_bandwidth,
    flits_to_bytes,
    bytes_to_flits,
)
from repro.utils.rng import RandomStreams, spawn_rng
from repro.utils.tables import (
    format_table,
    format_csv,
    write_csv,
    ResultTable,
)
from repro.utils.serialization import (
    to_jsonable,
    from_jsonable,
    dump_json,
    load_json,
)

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_probability",
    "check_positive_int",
    "check_even",
    "check_in_range",
    "check_power_of",
    "ValidationError",
    "TimeUnit",
    "bandwidth_to_beta",
    "beta_to_bandwidth",
    "flits_to_bytes",
    "bytes_to_flits",
    "RandomStreams",
    "spawn_rng",
    "format_table",
    "format_csv",
    "write_csv",
    "ResultTable",
    "to_jsonable",
    "from_jsonable",
    "dump_json",
    "load_json",
]
