"""Deterministic random-number stream management.

Simulation experiments must be reproducible and, when several independent
stochastic processes run in one simulation (one Poisson source per node),
their streams must not be correlated.  :class:`RandomStreams` hands out
independent :class:`numpy.random.Generator` instances derived from a single
seed via ``SeedSequence.spawn`` so that

* the same experiment seed always reproduces the same results, and
* adding one more stream never perturbs the existing ones.
"""

from __future__ import annotations

import zlib
from typing import Dict, Hashable

import numpy as np

from repro.utils.validation import ValidationError


def _stable_key_hash(part: Hashable) -> int:
    """A process-independent 32-bit hash of one stream-key component.

    Python's built-in ``hash`` is salted per process for strings, which
    would make "the same seed reproduces the same run" hold only within a
    single interpreter; stream keys are therefore hashed over their ``repr``
    instead, so serialized experiment records (scenario + seed) replay bit
    for bit in any process — including process-pool workers.
    """
    return zlib.crc32(repr(part).encode("utf-8"))


#: Module-level memo of stream seed material -> SeedSequence.  A simulation
#: run creates thousands of named streams (three per node) and every run of
#: a sweep re-derives the same sequences; SeedSequence objects are immutable
#: (``default_rng`` never mutates them), so sharing them across runs only
#: skips the entropy-mixing setup, never changes a stream.  Bounded by a
#: wholesale clear so replication studies over many seeds cannot grow it
#: without limit.
_SEED_SEQUENCES: Dict[tuple, np.random.SeedSequence] = {}
_SEED_SEQUENCE_CACHE_LIMIT = 262_144

#: Module-level stream pool: (entropy, key) -> (Generator, initial PCG64
#: state snapshot).  Seeding a generator pays SeedSequence entropy mixing
#: (~7 microseconds); restoring a snapshot into an existing generator is a
#: C-level dict assignment (~1.5 microseconds) — so a pooled
#: :class:`RandomStreams` hands out the *same* generator objects every run,
#: reset to their initial state, and a 1000+-node sweep stops paying stream
#: construction per point.  The pool is only safe while a single simulation
#: run per (seed, key) family is active at a time in the process (true for
#: the simulator: runs are strictly sequential per process, and parallel
#: sweeps use separate worker processes), which is why pooling is opt-in.
_STREAM_POOL: Dict[tuple, tuple] = {}
_STREAM_POOL_LIMIT = 262_144


def spawn_rng(seed: int | None, index: int = 0) -> np.random.Generator:
    """Create a generator for stream ``index`` derived from ``seed``.

    ``seed=None`` produces OS-entropy seeded streams (non-reproducible); any
    integer seed produces a deterministic family of streams.
    """
    if index < 0:
        raise ValidationError(f"index must be >= 0, got {index}")
    seq = np.random.SeedSequence(seed)
    children = seq.spawn(index + 1)
    return np.random.default_rng(children[index])


class RandomStreams:
    """A named family of independent random generators.

    ``pooled=True`` (used by the simulator's per-run state) additionally
    shares generator *objects* through a module-level pool: the first
    construction of a stream snapshots its initial PCG64 state, and every
    later :class:`RandomStreams` asking for the same (seed, key) gets the
    same generator restored to that snapshot.  The draws are bit-identical
    to a freshly seeded stream; only the seeding cost disappears.  Pooled
    families must not be used concurrently from two live instances with the
    same seed (the simulator never does — runs are sequential per process).

    Example
    -------
    >>> streams = RandomStreams(seed=42)
    >>> arrivals = streams.get("arrivals", 3)   # stream for node 3 arrivals
    >>> dests = streams.get("destinations", 3)  # independent stream
    """

    def __init__(self, seed: int | None = None, *, pooled: bool = False) -> None:
        self._seed = seed
        self._root = np.random.SeedSequence(seed)
        self._cache: Dict[Hashable, np.random.Generator] = {}
        # OS-entropy streams are non-reproducible, so there is no meaningful
        # initial state to share; pooling is a no-op for seed=None.
        self._pooled = pooled and seed is not None

    @property
    def seed(self) -> int | None:
        return self._seed

    @property
    def pooled(self) -> bool:
        return self._pooled

    def get(self, *key: Hashable) -> np.random.Generator:
        """Return (and memoise) the generator identified by ``key``.

        The key is hashed into the seed material so that the same key always
        maps to the same stream for a given root seed.
        """
        if not key:
            raise ValidationError("at least one key component is required")
        generator = self._cache.get(key)
        if generator is None:
            entropy = self._root.entropy if self._root.entropy is not None else 0
            cache_key = (entropy, key)
            if self._pooled:
                pooled = _STREAM_POOL.get(cache_key)
                if pooled is not None:
                    generator, snapshot = pooled
                    generator.bit_generator.state = snapshot
                    self._cache[key] = generator
                    return generator
            sequence = _SEED_SEQUENCES.get(cache_key)
            if sequence is None:
                material = [entropy]
                for part in key:
                    material.append(_stable_key_hash(part))
                if len(_SEED_SEQUENCES) >= _SEED_SEQUENCE_CACHE_LIMIT:
                    _SEED_SEQUENCES.clear()
                sequence = _SEED_SEQUENCES[cache_key] = np.random.SeedSequence(material)
            generator = self._cache[key] = np.random.default_rng(sequence)
            if self._pooled:
                if len(_STREAM_POOL) >= _STREAM_POOL_LIMIT:
                    _STREAM_POOL.clear()
                _STREAM_POOL[cache_key] = (generator, generator.bit_generator.state)
        return generator

    def fresh(self) -> np.random.Generator:
        """Return a new, unnamed independent stream (used for scratch draws)."""
        child = self._root.spawn(1)[0]
        return np.random.default_rng(child)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomStreams(seed={self._seed!r}, streams={len(self._cache)})"


def clear_stream_pool() -> None:
    """Drop all pooled generators and snapshots (test isolation hook)."""
    _STREAM_POOL.clear()
