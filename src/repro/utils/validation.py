"""Parameter validation helpers.

The analytical model and the simulator share a large space of numeric
parameters (port counts, tree heights, message lengths, arrival rates).
Invalid combinations fail late and confusingly inside numeric code, so every
public constructor validates its inputs through the helpers in this module
and raises :class:`ValidationError` with a precise message instead.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Sequence


class ValidationError(ValueError):
    """Raised when a model or simulator parameter is invalid."""


def _name(name: str | None) -> str:
    return name if name else "value"


def check_positive(value: float, name: str | None = None) -> float:
    """Return ``value`` if it is a finite number strictly greater than zero."""
    value = _check_finite_number(value, name)
    if value <= 0:
        raise ValidationError(f"{_name(name)} must be > 0, got {value!r}")
    return value


def check_non_negative(value: float, name: str | None = None) -> float:
    """Return ``value`` if it is a finite number greater than or equal to zero."""
    value = _check_finite_number(value, name)
    if value < 0:
        raise ValidationError(f"{_name(name)} must be >= 0, got {value!r}")
    return value


def check_probability(value: float, name: str | None = None) -> float:
    """Return ``value`` if it lies in the closed interval [0, 1]."""
    value = _check_finite_number(value, name)
    if not 0.0 <= value <= 1.0:
        raise ValidationError(f"{_name(name)} must be in [0, 1], got {value!r}")
    return value


def check_positive_int(value: Any, name: str | None = None) -> int:
    """Return ``value`` as an ``int`` if it is an integer strictly greater than zero."""
    ivalue = _check_integer(value, name)
    if ivalue <= 0:
        raise ValidationError(f"{_name(name)} must be a positive integer, got {value!r}")
    return ivalue


def check_even(value: Any, name: str | None = None) -> int:
    """Return ``value`` as an ``int`` if it is an even integer."""
    ivalue = _check_integer(value, name)
    if ivalue % 2 != 0:
        raise ValidationError(f"{_name(name)} must be even, got {value!r}")
    return ivalue


def check_in_range(
    value: float,
    low: float,
    high: float,
    name: str | None = None,
    *,
    inclusive: bool = True,
) -> float:
    """Return ``value`` if it lies inside ``[low, high]`` (or ``(low, high)``)."""
    value = _check_finite_number(value, name)
    if inclusive:
        ok = low <= value <= high
        bounds = f"[{low}, {high}]"
    else:
        ok = low < value < high
        bounds = f"({low}, {high})"
    if not ok:
        raise ValidationError(f"{_name(name)} must be in {bounds}, got {value!r}")
    return value


def check_power_of(value: Any, base: int, name: str | None = None) -> int:
    """Return ``value`` if it is an exact integer power of ``base`` (>= 1)."""
    ivalue = _check_integer(value, name)
    if base < 2:
        raise ValidationError(f"base must be >= 2, got {base!r}")
    if ivalue < 1:
        raise ValidationError(f"{_name(name)} must be >= 1, got {value!r}")
    current = 1
    while current < ivalue:
        current *= base
    if current != ivalue:
        raise ValidationError(
            f"{_name(name)} must be a power of {base}, got {value!r}"
        )
    return ivalue


def check_sequence_of_positive_ints(
    values: Iterable[Any], name: str | None = None
) -> tuple[int, ...]:
    """Validate a non-empty sequence of positive integers (e.g. tree heights)."""
    out = tuple(values)
    if not out:
        raise ValidationError(f"{_name(name)} must not be empty")
    return tuple(check_positive_int(v, f"{_name(name)}[{idx}]") for idx, v in enumerate(out))


def check_same_length(
    a: Sequence[Any], b: Sequence[Any], name_a: str = "a", name_b: str = "b"
) -> None:
    """Raise unless ``a`` and ``b`` have the same length."""
    if len(a) != len(b):
        raise ValidationError(
            f"{name_a} (len {len(a)}) and {name_b} (len {len(b)}) must have the same length"
        )


def _check_finite_number(value: Any, name: str | None) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValidationError(f"{_name(name)} must be a number, got {type(value).__name__}")
    fvalue = float(value)
    if math.isnan(fvalue) or math.isinf(fvalue):
        raise ValidationError(f"{_name(name)} must be finite, got {value!r}")
    return fvalue


def _check_integer(value: Any, name: str | None) -> int:
    if isinstance(value, bool):
        raise ValidationError(f"{_name(name)} must be an integer, got bool")
    if isinstance(value, int):
        return value
    if isinstance(value, float) and value.is_integer():
        return int(value)
    raise ValidationError(f"{_name(name)} must be an integer, got {value!r}")
