"""Unit helpers for the paper's parameterisation.

The paper expresses all timing quantities in an abstract *time unit*:

* network bandwidth of ``500 / time unit`` (bytes per time unit), so the
  per-byte transmission time is ``beta_net = 1 / 500``;
* network latency ``alpha_net = 0.02`` and switch latency
  ``alpha_sw = 0.01`` time units;
* flit length ``L_m`` in bytes (256 or 512), message length ``M`` in flits
  (32 or 64).

These helpers convert between the different representations and keep the
conversions in one, well-tested place.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.utils.validation import check_positive, check_positive_int


class TimeUnit(str, Enum):
    """Symbolic time units used when labelling results.

    The paper works in abstract "time units"; real deployments usually think
    in microseconds.  The enum only labels output — it never rescales values.
    """

    ABSTRACT = "time-unit"
    MICROSECONDS = "us"
    NANOSECONDS = "ns"

    def label(self) -> str:
        return self.value


def bandwidth_to_beta(bandwidth: float) -> float:
    """Convert a channel bandwidth (bytes / time unit) into ``beta_net``.

    ``beta_net`` is the transmission time of a single byte (the inverse of
    the bandwidth), as used by Eq. (14)-(15) of the paper.
    """
    check_positive(bandwidth, "bandwidth")
    return 1.0 / bandwidth


def beta_to_bandwidth(beta: float) -> float:
    """Convert the per-byte transmission time ``beta_net`` back to bandwidth."""
    check_positive(beta, "beta")
    return 1.0 / beta


def flits_to_bytes(num_flits: int, flit_bytes: int) -> int:
    """Size in bytes of a message of ``num_flits`` flits of ``flit_bytes`` each."""
    check_positive_int(num_flits, "num_flits")
    check_positive_int(flit_bytes, "flit_bytes")
    return num_flits * flit_bytes


def bytes_to_flits(num_bytes: int, flit_bytes: int) -> int:
    """Number of flits (rounded up) needed to carry ``num_bytes`` of payload."""
    check_positive_int(num_bytes, "num_bytes")
    check_positive_int(flit_bytes, "flit_bytes")
    return -(-num_bytes // flit_bytes)


@dataclass(frozen=True)
class LinkTiming:
    """Timing of a single channel, mirroring Eq. (14)-(15).

    Attributes
    ----------
    alpha_net:
        Network (wire / NIC) latency added on node-switch channels.
    alpha_sw:
        Switch latency added on switch-switch channels.
    beta_net:
        Transmission time of one byte (inverse bandwidth).
    flit_bytes:
        Flit payload ``L_m`` in bytes.
    """

    alpha_net: float
    alpha_sw: float
    beta_net: float
    flit_bytes: int

    def __post_init__(self) -> None:
        check_positive(self.alpha_net, "alpha_net")
        check_positive(self.alpha_sw, "alpha_sw")
        check_positive(self.beta_net, "beta_net")
        check_positive_int(self.flit_bytes, "flit_bytes")

    @property
    def t_cn(self) -> float:
        """Node↔switch channel transfer time of one flit (Eq. 14)."""
        return self.alpha_net + 0.5 * self.flit_bytes * self.beta_net

    @property
    def t_cs(self) -> float:
        """Switch↔switch channel transfer time of one flit (Eq. 15)."""
        return self.alpha_sw + self.flit_bytes * self.beta_net
