"""JSON serialisation of experiment inputs and results.

Experiment records contain dataclasses, numpy scalars/arrays and nested
containers; :func:`to_jsonable` flattens them into plain Python structures so
results can be written to disk and re-loaded for later comparison
(EXPERIMENTS.md is generated from such records).

:func:`from_jsonable` is the typed inverse for *inputs*: given a target
dataclass (or container/primitive annotation) it rebuilds the original object
tree from the plain structures, which is what gives
:class:`repro.api.Scenario` its JSON round trip.
"""

from __future__ import annotations

import dataclasses
import json
import types
import typing
from enum import Enum
from pathlib import Path
from typing import Any

import numpy as np


def to_jsonable(obj: Any) -> Any:
    """Recursively convert ``obj`` into JSON-serialisable primitives."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, Enum):
        return obj.value
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return [to_jsonable(v) for v in obj.tolist()]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {f.name: to_jsonable(getattr(obj, f.name)) for f in dataclasses.fields(obj)}
    if isinstance(obj, dict):
        return {str(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple, set, frozenset)):
        return [to_jsonable(v) for v in obj]
    if isinstance(obj, Path):
        return str(obj)
    if hasattr(obj, "to_jsonable"):
        return to_jsonable(obj.to_jsonable())
    raise TypeError(f"cannot serialise object of type {type(obj).__name__}")


def from_jsonable(cls: Any, data: Any) -> Any:
    """Rebuild an object of type ``cls`` from :func:`to_jsonable` output.

    ``cls`` may be a dataclass, a parametrised container annotation
    (``Tuple[int, ...]``, ``Dict[str, float]``, ``Optional[...]``/unions), an
    :class:`~enum.Enum`, :class:`~pathlib.Path` or a JSON primitive type.
    Dataclass fields are reconstructed recursively from their type hints, so
    nested frozen dataclasses (the shape of every spec in this package) round
    trip without any per-class loading code.
    """
    if cls is Any or cls is None:
        return data
    origin = typing.get_origin(cls)
    if origin is None:
        if dataclasses.is_dataclass(cls) and isinstance(cls, type):
            if not isinstance(data, dict):
                raise TypeError(
                    f"expected a mapping to rebuild {cls.__name__}, got {type(data).__name__}"
                )
            hints = typing.get_type_hints(cls)
            kwargs = {}
            for field in dataclasses.fields(cls):
                if not field.init or field.name not in data:
                    continue
                kwargs[field.name] = from_jsonable(hints[field.name], data[field.name])
            return cls(**kwargs)
        if isinstance(cls, type) and issubclass(cls, Enum):
            return cls(data)
        if isinstance(cls, type) and issubclass(cls, Path):
            return Path(data)
        if cls is float and data is not None:
            return float(data)
        if cls in (int, str, bool) and data is not None:
            return cls(data)
        if data is None or not isinstance(cls, type) or isinstance(data, cls):
            return data
        raise TypeError(f"cannot rebuild objects of type {cls!r}")
    if origin in (typing.Union, types.UnionType):
        arms = typing.get_args(cls)
        if type(None) in arms and data is None:
            return None
        last_error: Exception | None = None
        for arm in arms:
            if arm is type(None):
                continue
            try:
                return from_jsonable(arm, data)
            except (TypeError, ValueError, KeyError) as error:
                last_error = error
        raise TypeError(f"no union arm of {cls} accepts {data!r}") from last_error
    if origin is tuple:
        args = typing.get_args(cls)
        if len(args) == 2 and args[1] is Ellipsis:
            return tuple(from_jsonable(args[0], item) for item in data)
        return tuple(from_jsonable(arm, item) for arm, item in zip(args, data))
    if origin is list:
        (item_type,) = typing.get_args(cls) or (Any,)
        return [from_jsonable(item_type, item) for item in data]
    if origin in (dict, typing.Mapping):
        key_type, value_type = typing.get_args(cls) or (Any, Any)
        return {
            from_jsonable(key_type, key): from_jsonable(value_type, value)
            for key, value in data.items()
        }
    raise TypeError(f"cannot rebuild objects of type {cls!r}")


def dump_json(obj: Any, path: str | Path, *, indent: int = 2) -> Path:
    """Serialise ``obj`` to JSON at ``path`` and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(to_jsonable(obj), indent=indent, sort_keys=True), encoding="utf-8")
    return path


def load_json(path: str | Path) -> Any:
    """Load a JSON document previously written with :func:`dump_json`."""
    return json.loads(Path(path).read_text(encoding="utf-8"))
